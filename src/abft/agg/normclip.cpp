#include "abft/agg/normclip.hpp"

#include <algorithm>

namespace abft::agg {

Vector NormClipAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  std::vector<double> norms(gradients.size());
  for (std::size_t i = 0; i < gradients.size(); ++i) norms[i] = gradients[i].norm();
  std::vector<double> sorted = norms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double clip =
      (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  Vector sum(dim);
  for (std::size_t i = 0; i < gradients.size(); ++i) {
    if (norms[i] > clip && norms[i] > 0.0) {
      sum.add_scaled(clip / norms[i], gradients[i]);
    } else {
      sum += gradients[i];
    }
  }
  return sum / static_cast<double>(n);
}

void NormClipAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                        AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  ws.fill_norms(batch);
  ws.scratch.assign(ws.norms.begin(), ws.norms.end());
  const double clip = median_inplace(ws.scratch.data(), ws.scratch.data() + n);
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  for (int i = 0; i < n; ++i) {
    const double norm = ws.norms[static_cast<std::size_t>(i)];
    const double* row = batch.row(i).data();
    if (norm > clip && norm > 0.0) {
      const double s = clip / norm;
      for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += s * row[k];
    } else {
      for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += row[k];
    }
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] *= inv;
}

}  // namespace abft::agg

#include "abft/agg/normclip.hpp"

#include <algorithm>

namespace abft::agg {

Vector NormClipAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  std::vector<double> norms(gradients.size());
  for (std::size_t i = 0; i < gradients.size(); ++i) norms[i] = gradients[i].norm();
  std::vector<double> sorted = norms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double clip =
      (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  Vector sum(dim);
  for (std::size_t i = 0; i < gradients.size(); ++i) {
    if (norms[i] > clip && norms[i] > 0.0) {
      sum.add_scaled(clip / norms[i], gradients[i]);
    } else {
      sum += gradients[i];
    }
  }
  return sum / static_cast<double>(n);
}

}  // namespace abft::agg

#include "abft/agg/registry.hpp"

#include <string>

#include "abft/agg/average.hpp"
#include "abft/agg/bulyan.hpp"
#include "abft/agg/cclip.hpp"
#include "abft/agg/cge.hpp"
#include "abft/agg/cwmed.hpp"
#include "abft/agg/cwtm.hpp"
#include "abft/agg/geomed.hpp"
#include "abft/agg/krum.hpp"
#include "abft/agg/normclip.hpp"
#include "abft/util/check.hpp"

namespace abft::agg {

std::unique_ptr<GradientAggregator> make_aggregator(std::string_view name) {
  if (name == "average") return std::make_unique<AverageAggregator>();
  if (name == "cge") return std::make_unique<CgeAggregator>();
  if (name == "cwtm") return std::make_unique<CwtmAggregator>();
  if (name == "cwmed") return std::make_unique<CwmedAggregator>();
  if (name == "krum") return std::make_unique<KrumAggregator>();
  if (name == "multikrum") return std::make_unique<MultiKrumAggregator>();
  if (name == "geomed") return std::make_unique<GeometricMedianAggregator>();
  if (name == "gmom") return std::make_unique<GmomAggregator>();
  if (name == "bulyan") return std::make_unique<BulyanAggregator>();
  if (name == "normclip") return std::make_unique<NormClipAggregator>();
  if (name == "cclip") return std::make_unique<CenteredClipAggregator>();
  ABFT_REQUIRE(false, "unknown aggregator name: " + std::string(name));
}

std::vector<std::string_view> aggregator_names() {
  return {"average", "cge",    "cwtm", "cwmed",  "krum",     "multikrum",
          "geomed",  "gmom",   "bulyan", "normclip", "cclip"};
}

AggMode agg_mode_from_string(std::string_view name) {
  if (name == "exact") return AggMode::exact;
  if (name == "fast") return AggMode::fast;
  ABFT_REQUIRE(false, "unknown aggregation mode: " + std::string(name));
}

std::string_view to_string(AggMode mode) noexcept {
  return mode == AggMode::fast ? "fast" : "exact";
}

Precision precision_from_string(std::string_view name) {
  if (name == "f64") return Precision::f64;
  if (name == "f32") return Precision::f32;
  ABFT_REQUIRE(false, "unknown aggregation precision: " + std::string(name));
}

std::string_view to_string(Precision precision) noexcept {
  return precision == Precision::f32 ? "f32" : "f64";
}

}  // namespace abft::agg

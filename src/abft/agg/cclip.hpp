// Centered clipping (Karimireddy, He & Jaggi, 2021 — the paper's ref [28],
// "Learning from history for Byzantine robust optimization").  Starting
// from a robust pivot v_0, iterate
//   v_{l+1} = v_l + (1/n) sum_i clip(g_i - v_l, tau)
// where clip rescales to norm tau.  Outliers contribute at most tau each,
// while inliers pass through untouched.  Our stateless variant pivots on the
// coordinate-wise median and picks tau as the median distance to the pivot
// when no radius is supplied.
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

class CenteredClipAggregator final : public GradientAggregator {
 public:
  /// tau <= 0 selects the adaptive radius (median distance to the pivot).
  explicit CenteredClipAggregator(double tau = 0.0, int iterations = 3);

  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "cclip"; }

 private:
  double tau_;
  int iterations_;
};

/// Runs an inner filter and feeds its output as the sole "gradient" of an
/// outer one?  No — robust filters compose by *preprocessing*: the outer
/// rule aggregates the gradients after the inner rule's per-gradient
/// transformation.  This adapter implements the useful special case of
/// norm-capping every gradient at the median norm before any rule, an
/// ablation knob for bench_filters.
class ClippedInputAggregator final : public GradientAggregator {
 public:
  explicit ClippedInputAggregator(const GradientAggregator& inner);

  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "clipped-input"; }
  /// The preprocessing changes no preconditions: forward the inner rule's
  /// f capacity so the engine's thin-round clamp sees the real constraint.
  [[nodiscard]] int max_usable_f(int n) const noexcept override {
    return inner_.max_usable_f(n);
  }
  [[nodiscard]] int min_usable_f() const noexcept override { return inner_.min_usable_f(); }

 private:
  const GradientAggregator& inner_;
};

}  // namespace abft::agg

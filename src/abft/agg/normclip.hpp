// Norm clipping: rescale every gradient whose norm exceeds the median norm
// down to the median, then average.  A lightweight robustification used as an
// ablation baseline (bounded but not trimmed influence).
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

class NormClipAggregator final : public GradientAggregator {
 public:
  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "normclip"; }
};

}  // namespace abft::agg

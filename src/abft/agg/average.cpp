#include "abft/agg/average.hpp"

namespace abft::agg {

Vector AverageAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  return linalg::mean(gradients);
}

}  // namespace abft::agg

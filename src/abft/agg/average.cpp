#include "abft/agg/average.hpp"

#include <algorithm>

namespace abft::agg {

Vector AverageAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  return linalg::mean(gradients);
}

void AverageAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                       AggregatorWorkspace& /*workspace*/) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = batch.row(i).data();
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += row[k];
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] *= inv;
}

}  // namespace abft::agg

// Internal: laned floating-point reductions for the relaxed-parity
// (AggMode::fast) kernels.
//
// GCC/Clang will not auto-vectorize a plain `sum += a[k] * b[k]` reduction
// without -ffast-math because it reorders the additions; the loops here
// carry 16 *independent* partial sums (two 8-lane groups, enough ILP to
// cover the FMA latency chain) so the compiler vectorizes them at -O2 and
// the result is deterministic for a given (d, ISA) — just not bit-equal to
// the sequential exact-mode order.  Exact-mode kernels must NOT call these.
#pragma once

#include <cstddef>

namespace abft::agg::detail {

inline constexpr int kReduceLanes = 8;

/// sum_k (a[k] - b[k])^2, laned.  The workhorse of the fast Weiszfeld and
/// centered-clipping distance passes.
inline double laned_sqdist(const double* a, const double* b, int d) {
  double l0[kReduceLanes] = {0.0};
  double l1[kReduceLanes] = {0.0};
  int k = 0;
  for (; k + 2 * kReduceLanes <= d; k += 2 * kReduceLanes) {
    for (int t = 0; t < kReduceLanes; ++t) {
      const double diff = a[k + t] - b[k + t];
      l0[t] += diff * diff;
    }
    for (int t = 0; t < kReduceLanes; ++t) {
      const double diff = a[k + kReduceLanes + t] - b[k + kReduceLanes + t];
      l1[t] += diff * diff;
    }
  }
  for (; k + kReduceLanes <= d; k += kReduceLanes) {
    for (int t = 0; t < kReduceLanes; ++t) {
      const double diff = a[k + t] - b[k + t];
      l0[t] += diff * diff;
    }
  }
  double sum = 0.0;
  for (; k < d; ++k) {
    const double diff = a[k] - b[k];
    sum += diff * diff;
  }
  for (int t = 0; t < kReduceLanes; ++t) sum += l0[t] + l1[t];
  return sum;
}

/// sum_k a[k], laned.
inline double laned_sum(const double* a, int d) {
  double l0[kReduceLanes] = {0.0};
  int k = 0;
  for (; k + kReduceLanes <= d; k += kReduceLanes) {
    for (int t = 0; t < kReduceLanes; ++t) l0[t] += a[k + t];
  }
  double sum = 0.0;
  for (; k < d; ++k) sum += a[k];
  for (int t = 0; t < kReduceLanes; ++t) sum += l0[t];
  return sum;
}

}  // namespace abft::agg::detail

// Internal: laned floating-point reductions for the relaxed-parity
// (AggMode::fast) kernels.
//
// GCC/Clang will not auto-vectorize a plain `sum += a[k] * b[k]` reduction
// without -ffast-math because it reorders the additions; the loops here
// carry 16 *independent* partial sums (two 8-lane groups, enough ILP to
// cover the FMA latency chain) so the compiler vectorizes them at -O2 and
// the result is deterministic for a given (d, ISA) — just not bit-equal to
// the sequential exact-mode order.  Exact-mode kernels must NOT call these.
// (The coreset construction pass in agg/coreset.cpp vectorizes differently —
// across rows on a column-major layout, which keeps each row's summation
// sequential in k; only its runtime-dispatched AVX-512 colmajor variant
// below, whose FMA contraction can round differently, is fast-mode-gated.)
#pragma once

#include <cstddef>

#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

namespace abft::agg::detail {

inline constexpr int kReduceLanes = 8;

/// sum_k (a[k] - b[k])^2, laned.  The workhorse of the fast Weiszfeld and
/// centered-clipping distance passes.
inline double laned_sqdist(const double* a, const double* b, int d) {
  double l0[kReduceLanes] = {0.0};
  double l1[kReduceLanes] = {0.0};
  int k = 0;
  for (; k + 2 * kReduceLanes <= d; k += 2 * kReduceLanes) {
    for (int t = 0; t < kReduceLanes; ++t) {
      const double diff = a[k + t] - b[k + t];
      l0[t] += diff * diff;
    }
    for (int t = 0; t < kReduceLanes; ++t) {
      const double diff = a[k + kReduceLanes + t] - b[k + kReduceLanes + t];
      l1[t] += diff * diff;
    }
  }
  for (; k + kReduceLanes <= d; k += kReduceLanes) {
    for (int t = 0; t < kReduceLanes; ++t) {
      const double diff = a[k + t] - b[k + t];
      l0[t] += diff * diff;
    }
  }
  double sum = 0.0;
  for (; k < d; ++k) {
    const double diff = a[k] - b[k];
    sum += diff * diff;
  }
  for (int t = 0; t < kReduceLanes; ++t) sum += l0[t] + l1[t];
  return sum;
}

#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
/// sum_k (a[k] - b[k])^2 with 8-wide FMA accumulation and a masked tail.
/// Summation order differs from laned_sqdist, so callers must be under a
/// tolerance contract (AggMode::fast), never exact mode.
inline double avx512_sqdist(const double* a, const double* b, int d) {
  __m512d acc = _mm512_setzero_pd();
  int k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m512d diff = _mm512_sub_pd(_mm512_loadu_pd(a + k), _mm512_loadu_pd(b + k));
    acc = _mm512_fmadd_pd(diff, diff, acc);
  }
  const int rem = d - k;
  if (rem > 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    const __m512d diff = _mm512_sub_pd(_mm512_maskz_loadu_pd(mask, a + k),
                                       _mm512_maskz_loadu_pd(mask, b + k));
    acc = _mm512_fmadd_pd(diff, diff, acc);
  }
  return _mm512_reduce_add_pd(acc);
}

/// Column-major squared-distance block: out[i] = sum_k (cols[k*stride + i]
/// - center[k])^2 for i in [lo, hi), vectorized 8 rows wide with the k loop
/// innermost (one register accumulator per row group, scalar row tail).
/// Each row's sum runs in ascending-k order like the portable loop, but FMA
/// contraction can round differently — fast mode only.
inline void avx512_colmajor_sqdist(const double* cols, std::size_t stride,
                                   const double* center, int d, int lo, int hi,
                                   double* out) {
  int i = lo;
  for (; i + 8 <= hi; i += 8) {
    const double* col = cols + i;
    __m512d diff = _mm512_sub_pd(_mm512_loadu_pd(col), _mm512_set1_pd(center[0]));
    __m512d acc = _mm512_mul_pd(diff, diff);
    for (int k = 1; k < d; ++k) {
      diff = _mm512_sub_pd(_mm512_loadu_pd(col + static_cast<std::size_t>(k) * stride),
                           _mm512_set1_pd(center[k]));
      acc = _mm512_fmadd_pd(diff, diff, acc);
    }
    _mm512_storeu_pd(out + i, acc);
  }
  for (; i < hi; ++i) {  // scalar row tail (< 8 rows)
    const double diff0 = cols[i] - center[0];
    double acc = diff0 * diff0;
    for (int k = 1; k < d; ++k) {
      const double diff = cols[static_cast<std::size_t>(k) * stride + i] - center[k];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}
#endif

/// Runtime probe for the AVX-512 sqdist path (compile-time support AND the
/// running CPU advertises avx512f) — mirrors batch.cpp's Gram dispatch.
inline bool sqdist_avx512_available() {
#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
  static const bool available = __builtin_cpu_supports("avx512f") != 0;
  return available;
#else
  return false;
#endif
}

// --- float32 lane (Precision::f32, fast mode only) -------------------------
// Same independent-partial-sum discipline as above, twice as wide: 16 float
// lanes per group, so a 512-bit vector unit still retires one whole group
// per FMA while moving half the bytes.  Lane accumulation stays in float
// (each lane sums ~d/16 products — the sqrt(d/16) * 2^-24 relative error is
// far inside every f32 tolerance envelope); only the final cross-lane
// reduction widens to double.  f32 lane only — never exact mode, never the
// f64 fast lane.

inline constexpr int kReduceLanesF32 = 16;

/// Minimum dimension for the f32 distance-pass lanes (Weiszfeld, CClip).
/// Below this the per-row fixed costs of the f32 path — the iterate demotion
/// and the wider horizontal reduction — outweigh the halved streaming
/// traffic, and the f64 fast path is measurably quicker (breakeven sits near
/// d = 300-500 for both kernels at n = 50); the knob is a documented no-op
/// there.  Rank-kernel rules (cwtm, cwmed) and the Gram-based rules gate
/// differently and do not use this constant.
inline constexpr int kF32DistanceLaneMinDim = 512;

/// sum_k (a[k] - b[k])^2 over demoted rows, laned, returned in double.
inline double laned_sqdist_f32(const float* a, const float* b, int d) {
  float l0[kReduceLanesF32] = {0.0f};
  float l1[kReduceLanesF32] = {0.0f};
  int k = 0;
  for (; k + 2 * kReduceLanesF32 <= d; k += 2 * kReduceLanesF32) {
    for (int t = 0; t < kReduceLanesF32; ++t) {
      const float diff = a[k + t] - b[k + t];
      l0[t] += diff * diff;
    }
    for (int t = 0; t < kReduceLanesF32; ++t) {
      const float diff = a[k + kReduceLanesF32 + t] - b[k + kReduceLanesF32 + t];
      l1[t] += diff * diff;
    }
  }
  for (; k + kReduceLanesF32 <= d; k += kReduceLanesF32) {
    for (int t = 0; t < kReduceLanesF32; ++t) {
      const float diff = a[k + t] - b[k + t];
      l0[t] += diff * diff;
    }
  }
  double sum = 0.0;
  for (; k < d; ++k) {
    const double diff = static_cast<double>(a[k]) - static_cast<double>(b[k]);
    sum += diff * diff;
  }
  for (int t = 0; t < kReduceLanesF32; ++t) {
    sum += static_cast<double>(l0[t]) + static_cast<double>(l1[t]);
  }
  return sum;
}

#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
/// f32 counterpart of avx512_sqdist: 16-wide FMA accumulation, masked tail,
/// double result.  Fast-mode f32 lane only.
inline double avx512_sqdist_f32(const float* a, const float* b, int d) {
  __m512 acc = _mm512_setzero_ps();
  int k = 0;
  for (; k + 16 <= d; k += 16) {
    const __m512 diff = _mm512_sub_ps(_mm512_loadu_ps(a + k), _mm512_loadu_ps(b + k));
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  const int rem = d - k;
  if (rem > 0) {
    const __mmask16 mask = static_cast<__mmask16>((1u << rem) - 1u);
    const __m512 diff = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, a + k),
                                      _mm512_maskz_loadu_ps(mask, b + k));
    acc = _mm512_fmadd_ps(diff, diff, acc);
  }
  return static_cast<double>(_mm512_reduce_add_ps(acc));
}

/// f32 counterpart of avx512_colmajor_sqdist: 16 rows per register group,
/// float accumulation, results widened into the caller's double buffer (the
/// selection machinery stays f64 so tie-breaking is precision-agnostic).
inline void avx512_colmajor_sqdist_f32(const float* cols, std::size_t stride,
                                       const float* center, int d, int lo, int hi,
                                       double* out) {
  int i = lo;
  for (; i + 16 <= hi; i += 16) {
    const float* col = cols + i;
    __m512 diff = _mm512_sub_ps(_mm512_loadu_ps(col), _mm512_set1_ps(center[0]));
    __m512 acc = _mm512_mul_ps(diff, diff);
    for (int k = 1; k < d; ++k) {
      diff = _mm512_sub_ps(_mm512_loadu_ps(col + static_cast<std::size_t>(k) * stride),
                           _mm512_set1_ps(center[k]));
      acc = _mm512_fmadd_ps(diff, diff, acc);
    }
    _mm512_storeu_pd(out + i, _mm512_cvtps_pd(_mm512_castps512_ps256(acc)));
    // Upper 8 floats via the AVX512F-only f64x4 extract (f32x8 needs DQ).
    const __m256 hi8 = _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(acc), 1));
    _mm512_storeu_pd(out + i + 8, _mm512_cvtps_pd(hi8));
  }
  for (; i < hi; ++i) {  // scalar row tail (< 16 rows)
    const float diff0 = cols[i] - center[0];
    float acc = diff0 * diff0;
    for (int k = 1; k < d; ++k) {
      const float diff = cols[static_cast<std::size_t>(k) * stride + i] - center[k];
      acc += diff * diff;
    }
    out[i] = static_cast<double>(acc);
  }
}
#endif

/// Portable f32 col-major distance block: same row-group vectorization shape
/// as the AVX-512 variant (16 rows wide, k innermost), plain loops so the
/// compiler picks the widest ISA it was built for.  Fast-mode f32 lane only.
inline void laned_colmajor_sqdist_f32(const float* cols, std::size_t stride,
                                      const float* center, int d, int lo, int hi,
                                      double* out) {
  int i = lo;
  for (; i + kReduceLanesF32 <= hi; i += kReduceLanesF32) {
    const float* col = cols + i;
    float acc[kReduceLanesF32];
    for (int t = 0; t < kReduceLanesF32; ++t) {
      const float diff = col[t] - center[0];
      acc[t] = diff * diff;
    }
    for (int k = 1; k < d; ++k) {
      const float* colk = col + static_cast<std::size_t>(k) * stride;
      for (int t = 0; t < kReduceLanesF32; ++t) {
        const float diff = colk[t] - center[k];
        acc[t] += diff * diff;
      }
    }
    for (int t = 0; t < kReduceLanesF32; ++t) out[i + t] = static_cast<double>(acc[t]);
  }
  for (; i < hi; ++i) {
    const float diff0 = cols[i] - center[0];
    float acc = diff0 * diff0;
    for (int k = 1; k < d; ++k) {
      const float diff = cols[static_cast<std::size_t>(k) * stride + i] - center[k];
      acc += diff * diff;
    }
    out[i] = static_cast<double>(acc);
  }
}

/// sum_k a[k] over a float buffer, laned, returned in double.
inline double laned_sum_f32(const float* a, int d) {
  float l0[kReduceLanesF32] = {0.0f};
  int k = 0;
  for (; k + kReduceLanesF32 <= d; k += kReduceLanesF32) {
    for (int t = 0; t < kReduceLanesF32; ++t) l0[t] += a[k + t];
  }
  double sum = 0.0;
  for (; k < d; ++k) sum += static_cast<double>(a[k]);
  for (int t = 0; t < kReduceLanesF32; ++t) sum += static_cast<double>(l0[t]);
  return sum;
}

/// sum_k a[k], laned.
inline double laned_sum(const double* a, int d) {
  double l0[kReduceLanes] = {0.0};
  int k = 0;
  for (; k + kReduceLanes <= d; k += kReduceLanes) {
    for (int t = 0; t < kReduceLanes; ++t) l0[t] += a[k + t];
  }
  double sum = 0.0;
  for (; k < d; ++k) sum += a[k];
  for (int t = 0; t < kReduceLanes; ++t) sum += l0[t];
  return sum;
}

}  // namespace abft::agg::detail

// Internal: laned floating-point reductions for the relaxed-parity
// (AggMode::fast) kernels.
//
// GCC/Clang will not auto-vectorize a plain `sum += a[k] * b[k]` reduction
// without -ffast-math because it reorders the additions; the loops here
// carry 16 *independent* partial sums (two 8-lane groups, enough ILP to
// cover the FMA latency chain) so the compiler vectorizes them at -O2 and
// the result is deterministic for a given (d, ISA) — just not bit-equal to
// the sequential exact-mode order.  Exact-mode kernels must NOT call these.
// (The coreset construction pass in agg/coreset.cpp vectorizes differently —
// across rows on a column-major layout, which keeps each row's summation
// sequential in k; only its runtime-dispatched AVX-512 colmajor variant
// below, whose FMA contraction can round differently, is fast-mode-gated.)
#pragma once

#include <cstddef>

#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

namespace abft::agg::detail {

inline constexpr int kReduceLanes = 8;

/// sum_k (a[k] - b[k])^2, laned.  The workhorse of the fast Weiszfeld and
/// centered-clipping distance passes.
inline double laned_sqdist(const double* a, const double* b, int d) {
  double l0[kReduceLanes] = {0.0};
  double l1[kReduceLanes] = {0.0};
  int k = 0;
  for (; k + 2 * kReduceLanes <= d; k += 2 * kReduceLanes) {
    for (int t = 0; t < kReduceLanes; ++t) {
      const double diff = a[k + t] - b[k + t];
      l0[t] += diff * diff;
    }
    for (int t = 0; t < kReduceLanes; ++t) {
      const double diff = a[k + kReduceLanes + t] - b[k + kReduceLanes + t];
      l1[t] += diff * diff;
    }
  }
  for (; k + kReduceLanes <= d; k += kReduceLanes) {
    for (int t = 0; t < kReduceLanes; ++t) {
      const double diff = a[k + t] - b[k + t];
      l0[t] += diff * diff;
    }
  }
  double sum = 0.0;
  for (; k < d; ++k) {
    const double diff = a[k] - b[k];
    sum += diff * diff;
  }
  for (int t = 0; t < kReduceLanes; ++t) sum += l0[t] + l1[t];
  return sum;
}

#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
/// sum_k (a[k] - b[k])^2 with 8-wide FMA accumulation and a masked tail.
/// Summation order differs from laned_sqdist, so callers must be under a
/// tolerance contract (AggMode::fast), never exact mode.
inline double avx512_sqdist(const double* a, const double* b, int d) {
  __m512d acc = _mm512_setzero_pd();
  int k = 0;
  for (; k + 8 <= d; k += 8) {
    const __m512d diff = _mm512_sub_pd(_mm512_loadu_pd(a + k), _mm512_loadu_pd(b + k));
    acc = _mm512_fmadd_pd(diff, diff, acc);
  }
  const int rem = d - k;
  if (rem > 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    const __m512d diff = _mm512_sub_pd(_mm512_maskz_loadu_pd(mask, a + k),
                                       _mm512_maskz_loadu_pd(mask, b + k));
    acc = _mm512_fmadd_pd(diff, diff, acc);
  }
  return _mm512_reduce_add_pd(acc);
}

/// Column-major squared-distance block: out[i] = sum_k (cols[k*stride + i]
/// - center[k])^2 for i in [lo, hi), vectorized 8 rows wide with the k loop
/// innermost (one register accumulator per row group, scalar row tail).
/// Each row's sum runs in ascending-k order like the portable loop, but FMA
/// contraction can round differently — fast mode only.
inline void avx512_colmajor_sqdist(const double* cols, std::size_t stride,
                                   const double* center, int d, int lo, int hi,
                                   double* out) {
  int i = lo;
  for (; i + 8 <= hi; i += 8) {
    const double* col = cols + i;
    __m512d diff = _mm512_sub_pd(_mm512_loadu_pd(col), _mm512_set1_pd(center[0]));
    __m512d acc = _mm512_mul_pd(diff, diff);
    for (int k = 1; k < d; ++k) {
      diff = _mm512_sub_pd(_mm512_loadu_pd(col + static_cast<std::size_t>(k) * stride),
                           _mm512_set1_pd(center[k]));
      acc = _mm512_fmadd_pd(diff, diff, acc);
    }
    _mm512_storeu_pd(out + i, acc);
  }
  for (; i < hi; ++i) {  // scalar row tail (< 8 rows)
    const double diff0 = cols[i] - center[0];
    double acc = diff0 * diff0;
    for (int k = 1; k < d; ++k) {
      const double diff = cols[static_cast<std::size_t>(k) * stride + i] - center[k];
      acc += diff * diff;
    }
    out[i] = acc;
  }
}
#endif

/// Runtime probe for the AVX-512 sqdist path (compile-time support AND the
/// running CPU advertises avx512f) — mirrors batch.cpp's Gram dispatch.
inline bool sqdist_avx512_available() {
#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
  static const bool available = __builtin_cpu_supports("avx512f") != 0;
  return available;
#else
  return false;
#endif
}

/// sum_k a[k], laned.
inline double laned_sum(const double* a, int d) {
  double l0[kReduceLanes] = {0.0};
  int k = 0;
  for (; k + kReduceLanes <= d; k += kReduceLanes) {
    for (int t = 0; t < kReduceLanes; ++t) l0[t] += a[k + t];
  }
  double sum = 0.0;
  for (; k < d; ++k) sum += a[k];
  for (int t = 0; t < kReduceLanes; ++t) sum += l0[t];
  return sum;
}

}  // namespace abft::agg::detail

// Batched, zero-allocation support for the gradient-filter hot path.
//
// GradientBatch packs the n received gradients into one contiguous
// row-major n x d buffer once per round; AggregatorWorkspace owns every
// piece of scratch the rules need (column buffers, score/norm arrays, the
// pairwise squared-distance matrix) so that steady-state aggregation
// performs no heap allocation at all.  Buffers only ever grow, so a
// workspace reused across rounds (or across rules) settles into a
// fixed-footprint regime after the first call.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "abft/agg/threads.hpp"
#include "abft/linalg/vector.hpp"

namespace abft::agg {

using linalg::Vector;

/// Numerical contract of the batched kernels.
///
/// `exact` (the default) keeps every kernel bit-compatible with the legacy
/// span path: same selection tie-breaking, same floating-point summation
/// order, same convergence schedule.  `fast` relaxes that to *tolerance*
/// parity — kernels may vectorize reductions (independent partial sums),
/// replace full sorts with nth_element-style partial selection, and take
/// runtime-dispatched AVX-512 paths.  The (f, eps)-resilience guarantees of
/// the paper only constrain the aggregate, not the arithmetic, so fast mode
/// is semantically safe; its drift is bounded per rule by the
/// tolerance-parity suite in tests/test_agg_fast.cpp (||fast - exact||_inf
/// <= tol(rule, n, d)) and end-to-end by the fast-mode goldens in
/// tests/test_golden_e2e.cpp.
enum class AggMode {
  exact,  ///< bit-compatible with the span path (the default)
  fast,   ///< relaxed parity: vectorized/partial-selection kernels
};

/// Element width of the bandwidth-bound fast-mode kernels.
///
/// `f64` (the default) keeps every kernel on doubles.  `f32` demotes the
/// *inputs* of the distance/trim kernels — the Gram fill, the col-major
/// coreset distance pass, the rank-count CWTM/CWMed columns, the laned
/// Weiszfeld and centered-clipping distance loops — to float, halving the
/// bytes those memory-bound passes move.  Selection and tie-breaking still
/// run over a deterministic order, and the aggregate itself is accumulated
/// and emitted in f64.  The knob only has effect under AggMode::fast; exact
/// mode ignores it entirely (workspaces reject the combination at the
/// scenario layer).  Like fast/f64, the f32 lane is bit-identical across
/// thread counts: every demoted value and every f32 reduction is computed
/// by exactly one writer in a fixed order.
enum class Precision {
  f64,  ///< double-precision kernels (the default)
  f32,  ///< float inputs for the bandwidth-bound fast kernels
};

/// Contiguous row-major n x d matrix of gradients.  Row i is gradient i.
/// reshape() never shrinks capacity, so a batch reused across rounds stops
/// allocating once it has seen the largest (n, d) shape.
class GradientBatch {
 public:
  GradientBatch() = default;
  GradientBatch(int n, int d) { reshape(n, d); }

  /// Sets the logical shape.  Existing contents become unspecified; every
  /// row must be written before the batch is handed to an aggregator.
  void reshape(int n, int d);

  /// reshape + copy: packs a family of equal-dimension vectors.
  void pack(std::span<const Vector> gradients);

  [[nodiscard]] int rows() const noexcept { return n_; }
  [[nodiscard]] int cols() const noexcept { return d_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0 || d_ == 0; }

  [[nodiscard]] std::span<double> row(int i) noexcept {
    return {data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(d_),
            static_cast<std::size_t>(d_)};
  }
  [[nodiscard]] std::span<const double> row(int i) const noexcept {
    return {data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(d_),
            static_cast<std::size_t>(d_)};
  }

  /// Copies a vector into row i (dimension must equal cols()).
  void set_row(int i, const Vector& v);

  /// Row-writer ingest: copies a raw coefficient span into row i.  This is
  /// how agents, fault injectors and the network hand gradients to the
  /// filter without staging std::vector<Vector> messages.
  void set_row(int i, std::span<const double> values);

  /// Shrinks the logical row count to n (n <= rows()) without touching the
  /// surviving rows — the compaction step after the network has written the
  /// delivered messages into the leading rows.
  void truncate_rows(int n);

  /// Copies row i out into a Vector (allocates; not for the hot path).
  [[nodiscard]] Vector unpack_row(int i) const;

  /// Copies the whole batch out into vectors (allocates; adapter/test use).
  [[nodiscard]] std::vector<Vector> unpack() const;

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

 private:
  std::vector<double> data_;
  int n_ = 0;
  int d_ = 0;
};

/// Reusable scratch for the batched aggregation kernels.  All buffers grow
/// monotonically; fill_* helpers recompute derived quantities from a batch.
struct AggregatorWorkspace {
  // --- configuration -------------------------------------------------------
  /// Numerical mode of every kernel drawing scratch from this workspace (see
  /// AggMode).  Drivers thread their config flag through here; the default
  /// keeps the bit-exact legacy behaviour.
  AggMode mode = AggMode::exact;

  /// Element width of the bandwidth-bound fast-mode kernels (see Precision).
  /// Only consulted when mode == AggMode::fast; exact mode always runs f64.
  Precision precision = Precision::f64;

  /// True when the float32 compute lane is active (fast mode + f32 knob).
  [[nodiscard]] bool f32_lane() const noexcept {
    return mode == AggMode::fast && precision == Precision::f32;
  }

  /// Coordinate/pair-level parallel-for width for large d.  1 (the default)
  /// keeps every kernel single-threaded; drivers thread their config flag
  /// through here.
  int parallel_threads = 1;

  /// Optional persistent thread pool.  When set, every kernel parallel-for
  /// dispatches over the pool's sleeping workers instead of spawning a fresh
  /// thread team per call; drivers share one pool between round-level
  /// parallelism and the kernels (phases are sequential, so the pool is
  /// never re-entered).  Non-owning: the driver owns the pool.
  ThreadPool* pool = nullptr;

  /// Kernel-side parallel dispatch: pool when available, the spawning
  /// parallel_for otherwise (compatible with workspaces configured by hand).
  template <typename Fn>
  void run_parallel(int begin, int end, Fn&& fn);

  // --- scratch buffers -----------------------------------------------------
  std::vector<double> colmajor;  ///< d x n transposed copy of the batch
  std::vector<double> norms;     ///< per-gradient Euclidean norms (n)
  std::vector<double> sqnorms;   ///< per-gradient squared norms (n)
  /// Packed strictly-upper-triangular squared pairwise distances: entry
  /// (i, j) with i < j lives at pair_index(i, j, n), n*(n-1)/2 entries
  /// total.  Storing each unordered pair once (no diagonal, no mirror)
  /// halves the matrix traffic and drops the full n^2 zero-assign the old
  /// square layout paid; consumers go through pair_sqdist() /
  /// gather_pair_row() or walk the packed rows directly.
  std::vector<double> pairdist;
  std::vector<double> pairrow;   ///< one gathered pairdist row (n), scratch
  std::vector<double> scores;    ///< per-gradient filter scores (n)
  std::vector<double> scratch;   ///< misc n-sized scratch (dists, columns)
  std::vector<double> vecbuf;    ///< misc d-sized scratch (Weiszfeld, cclip)
  // --- float32 lane mirrors (see Precision) -------------------------------
  // Filled only when f32_lane() is active: rows_f32 is the demote-on-ingest
  // copy of the batch (n x d, row-major), colmajor_f32 its transpose,
  // sqnorms_f32 the per-row squared norms of the demoted rows, pairdist_f32
  // the packed triangular distances (same layout as pairdist), and
  // vecbuf_f32 a d-sized scratch for demoted iterates (Weiszfeld, cclip).
  std::vector<float> rows_f32;      ///< demoted batch rows (n x d)
  std::vector<float> colmajor_f32;  ///< d x n transpose of rows_f32
  std::vector<float> sqnorms_f32;   ///< squared norms of the demoted rows (n)
  std::vector<float> pairdist_f32;  ///< packed triangular distances, f32 lane
  std::vector<float> vecbuf_f32;    ///< d-sized f32 scratch (demoted iterates)
  std::vector<int> order;        ///< index permutation (n)
  std::vector<unsigned char> active;  ///< selection mask (n), Bulyan stage 1
  // Bulyan fast-mode stage 1 (incremental iterated-Krum scores): per-row
  // distance-sorted neighbour ids, their inverse permutation, and the
  // per-row selection-prefix cursor / selected count.
  std::vector<int> sorted_ids;   ///< n x n neighbour ids, ascending distance
  std::vector<int> ranks;        ///< rank of j in i's sorted order (n x n)
  std::vector<int> heads;        ///< one past the selection prefix (n)
  std::vector<int> counts;       ///< selected neighbours in the prefix (n)
  GradientBatch aux_batch;       ///< secondary batch (GMoM buckets, Bulyan)
  GradientBatch clip_batch;      ///< clipped copy for ClippedInputAggregator
  // Hierarchical (aggregate-of-aggregates) scratch — agg/hierarchy.hpp.  One
  // sub-workspace / gather batch / output staging vector per parallel worker
  // group, so the footprint scales with the worker width, not the shard
  // count (a thousand Gram shards through one workspace would otherwise pin
  // a thousand pairdist matrices).  unique_ptr keeps the recursive member
  // representable; it also makes the workspace move-only, which every
  // driver already satisfies (workspaces are constructed in place).
  std::vector<std::unique_ptr<AggregatorWorkspace>> hier_groups;
  std::vector<GradientBatch> hier_gather;  ///< per-group shard input rows
  std::vector<Vector> hier_out;            ///< per-group shard output staging
  GradientBatch hier_root;                 ///< S x d shard outputs
  std::vector<int> hier_perm;              ///< seeded shard assignment (n)
  // Coreset pre-reduction scratch — agg/coreset.hpp.  The blocked k-center
  // pass keeps per-row nearest-center state in the n-sized buffers (its
  // column-major distance kernel runs on `colmajor` with `scratch` as the
  // per-round candidate-distance buffer), one bounded farthest-point epoch
  // queue per row block in coreset_cand (strided, counts in
  // coreset_cand_count, -1 marking a queue due for refill, epoch bounds in
  // coreset_qbound), the merged live (distance, id) candidate pairs in
  // coreset_merged, and the selected rows / multiplicity weights in the
  // m-sized buffers; all grow monotonically so the reduction is
  // allocation-free after warmup.
  std::vector<double> coreset_dist;    ///< sq dist to nearest center (n)
  std::vector<int> coreset_assign;     ///< nearest center slot (n)
  std::vector<std::pair<double, int>> coreset_merged;  ///< live candidate pairs
  std::vector<std::pair<double, int>> coreset_qbound;  ///< per-block epoch bounds
  std::vector<int> coreset_cand;       ///< per-block top-(z+1) queues
  std::vector<int> coreset_cand_count; ///< per-block queue sizes (-1: refill)
  std::vector<int> coreset_ids;        ///< selected row ids (m)
  std::vector<double> coreset_weights; ///< multiplicity weights, sum = n (m)
  std::vector<double> coreset_vec;     ///< d-sized scratch (median pivot)
  std::vector<std::pair<double, double>> coreset_pairs;  ///< (value, weight)
  GradientBatch coreset_batch;         ///< m x d packed coreset rows

  // --- fill helpers --------------------------------------------------------
  /// Transposes the batch into `colmajor` (cache-blocked), so per-coordinate
  /// kernels see each column as a contiguous run of n doubles.  The copy is
  /// scratch: kernels may reorder it in place (nth_element).
  void fill_colmajor(const GradientBatch& batch);

  /// Fills `sqnorms` with per-row squared Euclidean norms.
  void fill_sqnorms(const GradientBatch& batch);

  /// Fills `norms` (and `sqnorms`) with per-row Euclidean norms.
  void fill_norms(const GradientBatch& batch);

  /// Fills the packed triangular `pairdist` buffer (or `pairdist_f32` when
  /// the f32 lane is active) with squared Euclidean distances via the Gram
  /// identity ||xi - xj||^2 = ||xi||^2 + ||xj||^2 - 2 <xi, xj>, computing
  /// each unordered pair once.  Shared by Krum, Multi-Krum and Bulyan.
  void fill_pairwise_sqdist(const GradientBatch& batch);

  /// Demotes the batch rows into `rows_f32` (the f32 lane's one
  /// demote-on-ingest pass).
  void fill_rows_f32(const GradientBatch& batch);

  /// fill_rows_f32 + cache-blocked transpose into `colmajor_f32`.
  void fill_colmajor_f32(const GradientBatch& batch);

  // --- packed triangular pairdist accessors --------------------------------
  /// Index of unordered pair (i, j), i < j, in the packed strictly-upper
  /// triangular layout: row i's run starts after the i prior rows' runs of
  /// lengths n-1, n-2, ..., n-i.
  [[nodiscard]] static constexpr std::size_t pair_index(int i, int j, int n) noexcept {
    // i * (2n - i - 1) is always even, so the division is exact.
    return static_cast<std::size_t>(i) * (2 * static_cast<std::size_t>(n) - i - 1) / 2 +
           static_cast<std::size_t>(j - i - 1);
  }

  /// Squared distance between rows i and j (i != j), read from whichever
  /// pairdist buffer the active lane filled (f32 values are promoted).
  [[nodiscard]] double pair_sqdist(int i, int j, int n) const noexcept {
    if (i > j) std::swap(i, j);
    const std::size_t idx = pair_index(i, j, n);
    return f32_lane() ? static_cast<double>(pairdist_f32[idx]) : pairdist[idx];
  }

  /// Gathers row i of the (logical) n x n distance matrix into dst[0..n),
  /// diagonal 0, promoting f32-lane values.  dst must hold n doubles.
  void gather_pair_row(int i, int n, double* dst) const noexcept;
};

/// Validates the shared batched preconditions (non-empty, equal-dimension by
/// construction, 0 <= f < n); returns the common dimension d.
int validate_batch(const GradientBatch& batch, int f);

/// Ensures `out` has dimension d (reallocates only on dimension change).
void resize_output(Vector& out, int d);

/// Median of [first, last) computed in place via nth_element; matches the
/// sort-based median exactly ((m odd) middle element, (m even) mean of the
/// two middle elements).  Reorders the range.
double median_inplace(double* first, double* last);

/// Runs fn(begin_chunk, end_chunk) over [begin, end) split across up to
/// num_threads std::threads.  num_threads <= 1 (or a tiny range) degenerates
/// to a direct call on the calling thread — that path is allocation-free
/// (the callable is a template parameter, not a std::function).  With
/// num_threads > 1 each call spawns and joins a fresh thread team (tens of
/// microseconds); hot paths should prefer a persistent ThreadPool (see
/// threads.hpp) via AggregatorWorkspace::run_parallel — this spawning
/// fallback remains for ad-hoc workspaces with no pool.  fn must not throw.
template <typename Fn>
void parallel_for(int begin, int end, int num_threads, Fn&& fn) {
  const int range = end - begin;
  if (range <= 0) return;
  const int workers = std::min(num_threads, range);
  if (workers <= 1) {
    fn(begin, end);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  const int chunk = (range + workers - 1) / workers;
  for (int w = 1; w < workers; ++w) {
    const int lo = begin + w * chunk;
    const int hi = std::min(lo + chunk, end);
    if (lo >= hi) break;
    pool.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  fn(begin, std::min(begin + chunk, end));
  for (auto& t : pool) t.join();
}

template <typename Fn>
void AggregatorWorkspace::run_parallel(int begin, int end, Fn&& fn) {
  if (pool != nullptr) {
    pool->parallel_for(begin, end, parallel_threads, std::forward<Fn>(fn));
  } else {
    parallel_for(begin, end, parallel_threads, std::forward<Fn>(fn));
  }
}

}  // namespace abft::agg

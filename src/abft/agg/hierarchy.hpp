// Sharded hierarchical aggregation: the aggregate-of-aggregates tree that
// takes the Gram-based rules from O(n^2 d) to O((n^2 / S) d).  The n
// received gradients are partitioned into S shards, a registry rule runs
// per shard (shards dispatched in parallel over the workspace's ThreadPool),
// and a (possibly different) top-level rule robustly combines the S shard
// outputs.
//
// Fault-budget composition — the per-level (n_s, f_s) bookkeeping: every
// leaf runs with a per-shard budget f_leaf, so corrupting one shard output
// costs the adversary f_leaf + 1 faults; the root runs with a budget of
// f_root corrupted shard outputs.  The tree therefore masks any total fault
// count F with floor(F / (f_leaf + 1)) <= f_root, i.e.
//
//   tolerated_f = (f_leaf + 1) * (f_root + 1) - 1      (capped at n - 1)
//
// even when the faults are packed into the fewest possible shards.
// HierarchyBounds exposes those numbers plus the paper-facing resilience
// margin 2 * tolerated_f / n, directly comparable against the paper's
// 2f/n < 1 - mu/lambda approximation condition.
//
// Determinism: shard assignment is a seeded Fisher-Yates permutation of the
// row ids (assignment_seed = 0 keeps the identity order), each shard's rows
// are gathered contiguously, and per-shard outputs land in fixed root-batch
// rows — so the result is a pure function of (batch, f, config), bit
// identical at every thread count.  An S = 1 tree delegates to the leaf
// rule with the same clamped f_leaf budget bounds() reports — bit-identical
// to flat aggregation whenever the declared f is already in the leaf's
// usable range, and still runnable (budget clamped up to the leaf's floor)
// when it is not.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "abft/agg/aggregator.hpp"
#include "abft/agg/coreset.hpp"

namespace abft::agg {

struct HierarchyConfig {
  /// Number of shards S (>= 1); clamped to the row count per call so a
  /// shrinking roster degrades to fewer shards instead of failing.
  int shards = 1;
  /// Registry rule run on each shard's rows.
  std::string leaf_rule = "cwtm";
  /// Registry rule combining the S shard outputs.
  std::string root_rule = "cwtm";
  /// Per-shard declared fault budget.  -1 (the default) derives it per call
  /// as min(f, leaf max_usable_f(smallest shard)); an explicit value is
  /// clamped into the leaf rule's usable range, like the engine's own
  /// usable_fault_bound clamp.  Honoured at every effective shard count,
  /// including the S = 1 flat delegation (where it pins the executed leaf
  /// budget and max_usable_f accordingly).
  int f_leaf = -1;
  /// Seed of the deterministic row-to-shard assignment permutation; 0 keeps
  /// the identity order (row i lands in shard floor(i * S / n)'s slice).
  std::uint64_t assignment_seed = 0;
  /// Optional per-shard coreset pre-reduction (agg/coreset.hpp): each leaf
  /// runs the leaf rule on a weighted coreset of its shard's rows instead of
  /// the rows themselves.  The shard fault budget doubles as the coreset's
  /// outlier budget; shards too small to reduce delegate bit-identically.
  std::optional<CoresetConfig> coreset;
};

/// Per-level bookkeeping of one (n, f) aggregation through the tree.
struct HierarchyBounds {
  int n = 0;
  int shards = 1;        ///< effective S = min(config shards, n)
  int shard_rows_min = 0;
  int shard_rows_max = 0;
  int f_leaf = 0;        ///< budget every leaf runs with
  int f_root = 0;        ///< corrupted-shard budget the root runs with
  /// End-to-end guaranteed total-fault bound (f_leaf+1)(f_root+1)-1, capped
  /// at n - 1; -1 when the leaf/root rules cannot run on this shape at all.
  int tolerated_f = 0;
  /// 2 * tolerated_f / n — the paper's resilience margin (Theorem 2 needs
  /// 2f/n < 1 - mu/lambda, so this is the number to compare against it).
  double resilience_margin = 0.0;
};

/// Stable label, e.g. "hier-16-krum-cwtm" (+ "-fl2" when f_leaf is
/// explicit, + "-cs64" with a per-shard coreset).  Doubles as the
/// spec-layer aggregator spelling; uses only run-id/CSV-safe characters.
std::string hierarchy_label(const HierarchyConfig& config);

/// Label variant for a known row count n: reports the *effective* shard
/// count min(config.shards, n) — the tree a roster of n agents actually
/// runs, which can differ from the requested S when n < S.
std::string hierarchy_label(const HierarchyConfig& config, int n);

class HierarchicalAggregator final : public GradientAggregator {
 public:
  /// Throws std::invalid_argument on shards < 1, f_leaf < -1, or an unknown
  /// leaf/root registry rule name.
  explicit HierarchicalAggregator(HierarchyConfig config);

  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return label_; }
  /// The composed bound (f_leaf_max+1)(f_root_max+1)-1 under the per-level
  /// caps, so engines clamp the declared f to what the tree can honour (and
  /// hold position when a shrunk roster leaves the leaves unable to run).
  [[nodiscard]] int max_usable_f(int n) const noexcept override;
  [[nodiscard]] int min_usable_f() const noexcept override;

  [[nodiscard]] const HierarchyConfig& config() const noexcept { return config_; }

  /// The per-level bookkeeping an (n, f) call runs with — exposed so
  /// results/tests can audit the end-to-end bound.
  [[nodiscard]] HierarchyBounds bounds(int n, int f) const;

 private:
  HierarchyConfig config_;  // before leaf_/root_: ctor init order relies on it
  std::unique_ptr<GradientAggregator> leaf_;
  std::unique_ptr<GradientAggregator> root_;
  std::string label_;
};

}  // namespace abft::agg

// Coordinate-Wise Trimmed Mean (CWTM) — paper eq. (24).  Per coordinate,
// drops the f largest and f smallest entries and averages the remaining
// n - 2f.  Requires n > 2f.
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

class CwtmAggregator final : public GradientAggregator {
 public:
  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "cwtm"; }
  /// n > 2f.
  [[nodiscard]] int max_usable_f(int n) const noexcept override { return (n - 1) / 2; }
};

}  // namespace abft::agg

#include "abft/agg/bulyan.hpp"

#include <algorithm>
#include <vector>

#include "abft/agg/krum.hpp"
#include "abft/util/check.hpp"

namespace abft::agg {

Vector BulyanAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  const int n = static_cast<int>(gradients.size());
  ABFT_REQUIRE(n >= 4 * f + 3, "bulyan needs n >= 4f + 3");
  const int theta = n - 2 * f;
  const int beta = theta - 2 * f;

  // Stage 1: iterated Krum selection.  The pool shrinks from n to 2f + 1;
  // relaxed_scores clamps the neighbour count so every round is well-defined.
  std::vector<Vector> pool(gradients.begin(), gradients.end());
  std::vector<Vector> selected;
  selected.reserve(static_cast<std::size_t>(theta));
  for (int round = 0; round < theta; ++round) {
    const auto score = KrumAggregator::relaxed_scores(pool, f);
    const auto best =
        static_cast<std::size_t>(std::min_element(score.begin(), score.end()) - score.begin());
    selected.push_back(pool[best]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
  }

  // Stage 2: per coordinate, average the beta entries closest to the median.
  Vector out(dim);
  std::vector<double> column(selected.size());
  for (int k = 0; k < dim; ++k) {
    for (std::size_t i = 0; i < selected.size(); ++i) column[i] = selected[i][k];
    std::sort(column.begin(), column.end());
    const std::size_t m = column.size();
    const double med =
        (m % 2 == 1) ? column[m / 2] : 0.5 * (column[m / 2 - 1] + column[m / 2]);
    std::sort(column.begin(), column.end(), [med](double a, double b) {
      return std::abs(a - med) < std::abs(b - med);
    });
    double sum = 0.0;
    const int take = std::min<int>(beta, static_cast<int>(column.size()));
    for (int i = 0; i < take; ++i) sum += column[static_cast<std::size_t>(i)];
    out[k] = sum / static_cast<double>(take);
  }
  return out;
}

}  // namespace abft::agg

#include "abft/agg/bulyan.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "abft/agg/krum.hpp"
#include "abft/agg/simd_util.hpp"
#include "abft/util/check.hpp"

namespace abft::agg {

namespace {

/// Fast-mode stage 1: the iterated Krum selection with incremental score
/// maintenance instead of the exact path's per-round O(n^2) rescan of the
/// active mask.
///
/// Each row's Krum score is the sum of its `neighbors` smallest distances to
/// *active* other rows, and in each row's fixed distance-sorted neighbour
/// order that set is exactly a prefix (skipping inactive entries).  So every
/// row keeps a cursor one past its selection prefix plus a running score:
/// when the round's winner is deactivated, rows whose prefix contained it
/// subtract one term and advance their cursor to the next active neighbour,
/// and when the neighbour count shrinks with the pool, every row retreats
/// its cursor by one active entry.  Cursor movement is monotone per
/// direction, so the whole selection costs O(n^2 log n) for the initial
/// sorts plus O(n^2) maintenance — replacing the O(theta * n^2) rescan
/// (effectively O(n^3) since theta ~ n).
///
/// Relaxed parity: the running add/subtract accumulates fp error of order
/// n ulps relative to the freshly-summed exact score, so near-exact ties
/// may pick a different (equally valid) winner — the same class of
/// deviation the fast stage 2 already admits, bounded by the Bulyan
/// tolerance suite.
///
/// Preconditions match aggregate_into (caller validated); fills ws.order
/// with the theta picks and leaves ws.active marking the unselected rows.
void select_stage1_incremental(AggregatorWorkspace& ws, int n, int f, int theta) {
  const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  ws.sorted_ids.resize(nn);
  ws.ranks.resize(nn);
  ws.heads.resize(static_cast<std::size_t>(n));
  ws.counts.resize(static_cast<std::size_t>(n));
  ws.scores.resize(static_cast<std::size_t>(n));

  // Per-row neighbour order (ascending distance, ties by id so the order is
  // deterministic), plus its inverse for O(1) "is j inside i's prefix?".
  // Each row's distances are gathered once from the packed triangle into a
  // dense buffer so the sort comparator stays a plain indexed load; the
  // later incremental maintenance does point lookups via pair_sqdist().
  if (ws.parallel_threads <= 1) ws.pairrow.resize(static_cast<std::size_t>(n));
  ws.run_parallel(0, n, [&](int begin, int end) {
    std::vector<double> local_row;
    double* dist = ws.pairrow.data();
    if (ws.parallel_threads > 1) {
      local_row.resize(static_cast<std::size_t>(n));
      dist = local_row.data();
    }
    for (int i = begin; i < end; ++i) {
      const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
      int* ids = ws.sorted_ids.data() + base;
      ws.gather_pair_row(i, n, dist);
      int m = 0;
      for (int j = 0; j < n; ++j) {
        if (j != i) ids[m++] = j;
      }
      std::sort(ids, ids + m, [dist](int a, int b) {
        return dist[a] < dist[b] || (dist[a] == dist[b] && a < b);
      });
      int* rank = ws.ranks.data() + base;
      rank[i] = n;  // never inside any prefix
      for (int s = 0; s < m; ++s) rank[ids[s]] = s;
    }
  });

  int pool = n;
  {
    // Initial selection: the first k0 entries of every sorted order (all
    // rows are active).
    const int k0 = std::max(1, pool - f - 2);  // == round 0's neighbour count
    for (int i = 0; i < n; ++i) {
      const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
      const int* ids = ws.sorted_ids.data() + base;
      double sum = 0.0;
      for (int s = 0; s < k0; ++s) sum += ws.pair_sqdist(i, ids[s], n);
      ws.scores[static_cast<std::size_t>(i)] = sum;
      ws.heads[static_cast<std::size_t>(i)] = k0;
      ws.counts[static_cast<std::size_t>(i)] = k0;
    }
  }

  int removed = -1;
  for (int round = 0; round < theta; ++round) {
    // The span path's relaxed_scores rejects a pool of fewer than two
    // gradients (which f = 0 reaches on the final round); mirror it.
    ABFT_REQUIRE(pool >= 2, "relaxed krum scores need at least two gradients");
    const int neighbors = std::max(1, pool - f - 2);
    int best = -1;
    double best_score = 0.0;
    for (int i = 0; i < n; ++i) {
      if (!ws.active[static_cast<std::size_t>(i)]) continue;
      const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
      const int* ids = ws.sorted_ids.data() + base;
      const int* rank = ws.ranks.data() + base;
      int& head = ws.heads[static_cast<std::size_t>(i)];
      int& count = ws.counts[static_cast<std::size_t>(i)];
      double& score = ws.scores[static_cast<std::size_t>(i)];
      if (removed >= 0 && rank[removed] < head) {
        score -= ws.pair_sqdist(i, removed, n);
        --count;
      }
      while (count < neighbors) {
        // Enough active neighbours always remain (neighbors <= pool - 1),
        // so the cursor cannot run off the end.
        while (!ws.active[static_cast<std::size_t>(ids[head])]) ++head;
        score += ws.pair_sqdist(i, ids[head], n);
        ++head;
        ++count;
      }
      while (count > neighbors) {
        do {
          --head;
        } while (!ws.active[static_cast<std::size_t>(ids[head])]);
        score -= ws.pair_sqdist(i, ids[head], n);
        --count;
      }
      if (neighbors == 1) {
        // Endgame rounds score each row by its single nearest active
        // neighbour, and the two mutually-nearest rows then tie EXACTLY —
        // a structural tie the exact path breaks by index.  The running
        // sum's accumulated roundoff would break it arbitrarily instead,
        // so assign the one-term score directly (the selected entry is the
        // first active one in sorted order).
        int s = 0;
        while (!ws.active[static_cast<std::size_t>(ids[s])]) ++s;
        score = ws.pair_sqdist(i, ids[s], n);
      }
      if (best < 0 || score < best_score) {
        best = i;
        best_score = score;
      }
    }
    ws.order[static_cast<std::size_t>(round)] = best;
    ws.active[static_cast<std::size_t>(best)] = 0;
    removed = best;
    --pool;
  }
}

}  // namespace

Vector BulyanAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  const int n = static_cast<int>(gradients.size());
  ABFT_REQUIRE(n >= 4 * f + 3, "bulyan needs n >= 4f + 3");
  const int theta = n - 2 * f;
  const int beta = theta - 2 * f;

  // Stage 1: iterated Krum selection.  The pool shrinks from n to 2f + 1;
  // relaxed_scores clamps the neighbour count so every round is well-defined.
  std::vector<Vector> pool(gradients.begin(), gradients.end());
  std::vector<Vector> selected;
  selected.reserve(static_cast<std::size_t>(theta));
  for (int round = 0; round < theta; ++round) {
    const auto score = KrumAggregator::relaxed_scores(pool, f);
    const auto best =
        static_cast<std::size_t>(std::min_element(score.begin(), score.end()) - score.begin());
    selected.push_back(pool[best]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
  }

  // Stage 2: per coordinate, average the beta entries closest to the median.
  Vector out(dim);
  std::vector<double> column(selected.size());
  for (int k = 0; k < dim; ++k) {
    for (std::size_t i = 0; i < selected.size(); ++i) column[i] = selected[i][k];
    std::sort(column.begin(), column.end());
    const std::size_t m = column.size();
    const double med =
        (m % 2 == 1) ? column[m / 2] : 0.5 * (column[m / 2 - 1] + column[m / 2]);
    std::sort(column.begin(), column.end(), [med](double a, double b) {
      return std::abs(a - med) < std::abs(b - med);
    });
    double sum = 0.0;
    const int take = std::min<int>(beta, static_cast<int>(column.size()));
    for (int i = 0; i < take; ++i) sum += column[static_cast<std::size_t>(i)];
    out[k] = sum / static_cast<double>(take);
  }
  return out;
}

void BulyanAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                      AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  ABFT_REQUIRE(n >= 4 * f + 3, "bulyan needs n >= 4f + 3");
  const int theta = n - 2 * f;
  const int beta = theta - 2 * f;

  // Stage 1: iterated Krum selection over a shrinking active set.  The
  // pairwise squared distances are computed once (Gram identity) and shared
  // across all theta rounds instead of being recomputed per round.
  ws.fill_pairwise_sqdist(batch);
  ws.active.assign(static_cast<std::size_t>(n), 1);
  ws.order.resize(static_cast<std::size_t>(theta));  // selected rows, in pick order
  if (ws.mode == AggMode::fast) {
    select_stage1_incremental(ws, n, f, theta);
  } else {
    ws.scratch.resize(static_cast<std::size_t>(n));
    ws.pairrow.resize(static_cast<std::size_t>(n));
    int pool = n;
    for (int round = 0; round < theta; ++round) {
      // The span path's relaxed_scores rejects a pool of fewer than two
      // gradients (which f = 0 reaches on the final round); mirror it.
      ABFT_REQUIRE(pool >= 2, "relaxed krum scores need at least two gradients");
      const int neighbors = std::max(1, pool - f - 2);
      int best = -1;
      double best_score = 0.0;
      for (int i = 0; i < n; ++i) {
        if (!ws.active[static_cast<std::size_t>(i)]) continue;
        // Same values in the same ascending-j order as the old square
        // layout, so the exact path stays bit-identical.
        ws.gather_pair_row(i, n, ws.pairrow.data());
        const double* row = ws.pairrow.data();
        int m = 0;
        for (int j = 0; j < n; ++j) {
          if (j != i && ws.active[static_cast<std::size_t>(j)]) {
            ws.scratch[static_cast<std::size_t>(m++)] = row[j];
          }
        }
        std::nth_element(ws.scratch.begin(), ws.scratch.begin() + (neighbors - 1),
                         ws.scratch.begin() + m);
        double score = 0.0;
        for (int s = 0; s < neighbors; ++s) score += ws.scratch[static_cast<std::size_t>(s)];
        if (best < 0 || score < best_score) {
          best = i;
          best_score = score;
        }
      }
      ws.order[static_cast<std::size_t>(round)] = best;
      ws.active[static_cast<std::size_t>(best)] = 0;
      --pool;
    }
  }

  // Stage 2: per coordinate, average the beta selected entries closest to
  // the selected median.  Columns come from the contiguous workspace
  // transpose.  In exact mode the selection replicates the span path's two
  // sorts verbatim so tie-breaking among equidistant entries is
  // bit-identical; fast mode drops the second O(theta log theta) sort — in
  // a sorted column the beta entries closest to the median form a
  // contiguous window, found by an O(beta) two-pointer sweep and summed
  // with laned partial sums.  The selected multiset is identical for
  // tie-free columns; only the winner among exactly-equidistant entries
  // (which the exact path's unstable second sort also picks arbitrarily)
  // and the summation order may differ.
  const bool f32 = ws.f32_lane();
  if (f32) {
    ws.fill_colmajor_f32(batch);
  } else {
    ws.fill_colmajor(batch);
  }
  resize_output(out, d);
  auto result = out.coefficients();
  const int take = std::min(beta, theta);
  const bool fast = ws.mode == AggMode::fast;
  if (ws.parallel_threads <= 1) ws.scratch.resize(static_cast<std::size_t>(theta));
  ws.run_parallel(0, d, [&](int k_begin, int k_end) {
    // Single-threaded (the common case) stays allocation-free by borrowing
    // ws.scratch (free after stage 1); parallel chunks get a private buffer.
    std::vector<double> local_column;
    double* column = ws.scratch.data();
    if (ws.parallel_threads > 1) {
      local_column.resize(static_cast<std::size_t>(theta));
      column = local_column.data();
    }
    for (int k = k_begin; k < k_end; ++k) {
      // f32 lane: columns stream from the demoted transpose (half the
      // bandwidth of the dominant theta x d gather); the sort, median and
      // window sweep run on promoted doubles, so tie-breaking is the same
      // deterministic comparison as the f64 lane.
      if (f32) {
        const float* col =
            ws.colmajor_f32.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
        for (int s = 0; s < theta; ++s) {
          column[s] = static_cast<double>(col[ws.order[static_cast<std::size_t>(s)]]);
        }
      } else {
        const double* col =
            ws.colmajor.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
        for (int s = 0; s < theta; ++s) {
          column[s] = col[ws.order[static_cast<std::size_t>(s)]];
        }
      }
      double sum = 0.0;
      if (fast) {
        std::sort(column, column + theta);
        const double med = (theta % 2 == 1)
                               ? column[theta / 2]
                               : 0.5 * (column[theta / 2 - 1] + column[theta / 2]);
        // Greedy window growth from the median outwards: distances increase
        // monotonically in each direction of a sorted column, so the take
        // closest entries are exactly the window this sweep ends on.
        int lo = theta / 2 - 1;  // last index at or below the median
        int hi = theta / 2;      // first index at or above the median
        for (int picked = 0; picked < take; ++picked) {
          if (lo < 0) {
            ++hi;
          } else if (hi >= theta) {
            --lo;
          } else if (med - column[lo] <= column[hi] - med) {
            --lo;
          } else {
            ++hi;
          }
        }
        sum = detail::laned_sum(column + (lo + 1), hi - (lo + 1));
      } else {
        std::sort(column, column + theta);
        const double med = (theta % 2 == 1)
                               ? column[theta / 2]
                               : 0.5 * (column[theta / 2 - 1] + column[theta / 2]);
        std::sort(column, column + theta, [med](double a, double b) {
          return std::abs(a - med) < std::abs(b - med);
        });
        for (int s = 0; s < take; ++s) sum += column[s];
      }
      result[static_cast<std::size_t>(k)] = sum / static_cast<double>(take);
    }
  });
}

}  // namespace abft::agg

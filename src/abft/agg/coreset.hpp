// Coreset pre-reduction: a greedy k-center pass with an outlier budget that
// shrinks an n-row GradientBatch to a weighted coreset of m = k + z rows
// (z = f) before the exact registry rule runs, taking the per-round cost of
// the Gram-based family from O(n^2 d) to O(n k d + m^2 d).
//
// Construction (farthest-point-queue greedy k-center with outliers, after
// Ding et al.):
//   1. the seed center is the row nearest the coordinate-wise median of the
//      batch (a robust pivot an adversary cannot drag far with f rows);
//   2. each further center is the (z+1)-th farthest row from the selected
//      centers, found with a bounded size-(z+1) queue over the incrementally
//      maintained nearest-center distances — stepping z rows in from the far
//      end means up to z adversarial outliers cannot steer center placement;
//   3. after k centers, the z farthest remaining rows are carried verbatim
//      as weight-1 singletons, and every other row folds into its nearest
//      center's multiplicity weight.  Weights are integers summing to
//      exactly n.
//
// Semantics: the inner rule is evaluated on the *replicated multiset* — the
// virtual batch where coreset row i appears weight_i times (centers first in
// selection order, then the singletons in ascending row order).  Mean-like
// rules (average, cge, normclip, cclip, geomed) and the rank-based family
// (cwtm, cwmed, krum, multikrum) run weight-aware kernels that reproduce the
// replicated-multiset result exactly (up to floating-point summation order);
// gmom and bulyan materialize the replicated batch and run the registry rule
// on it — exact, but not sublinear (documented fallback).  The reduction is
// lossy by design: the weighted result drifts from the flat exact rule by at
// most the aggregation's Lipschitz constant times the k-center radius; the
// seeded tolerance suite in tests/test_coreset.cpp bounds that drift per
// rule.  When reduction cannot help (k + z >= n), the reducer delegates to
// the inner rule on the original batch bit-identically.
//
// Determinism: selection ties break on the lowest row id, assignment ties on
// the earliest center, and both the construction pass and the weighted
// kernels are single-threaded (m is small), so the reduced aggregate is a
// pure function of (batch, f, config) — bit-identical at every thread count.
#pragma once

#include <memory>
#include <string>

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

struct CoresetConfig {
  /// Number of k-center rows (the coreset additionally carries z = f
  /// singleton rows).  0 (the default) derives k = f + ceil(sqrt(n)) per
  /// call, the size at which construction and reduced aggregation balance.
  int size = 0;
};

/// Stable label, e.g. "coreset-64-krum" ("coreset-auto-krum" for the derived
/// size).  Doubles as the spec-layer aggregator spelling; uses only
/// run-id/CSV-safe characters.
std::string coreset_label(const CoresetConfig& config, std::string_view rule);

class CoresetReducer final : public GradientAggregator {
 public:
  /// Wraps the named registry rule.  Throws std::invalid_argument on an
  /// unknown rule name or config.size < 0.
  explicit CoresetReducer(std::string_view rule, CoresetConfig config = {});

  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return label_; }
  /// Forwarded from the inner rule: preconditions are stated on the
  /// replicated multiset, whose size is exactly n.
  [[nodiscard]] int max_usable_f(int n) const noexcept override;
  [[nodiscard]] int min_usable_f() const noexcept override;

  [[nodiscard]] const CoresetConfig& config() const noexcept { return config_; }

  /// True when the (n, f) shape actually reduces: k(n, f) + f < n.
  /// Otherwise aggregate_into delegates to the inner rule bit-identically.
  [[nodiscard]] bool would_reduce(int n, int f) const noexcept;

  /// The k-center count for an (n, f) call (config.size, or the derived
  /// f + ceil(sqrt(n)) when size == 0).
  [[nodiscard]] int centers_for(int n, int f) const noexcept;

  /// Runs the construction pass only: fills ws.coreset_batch (m x d),
  /// ws.coreset_ids and ws.coreset_weights, and returns m.  Exposed so the
  /// property suite can audit selection, weights and outlier exclusion
  /// directly.  Requires would_reduce(n, f).
  int reduce(const GradientBatch& batch, int f, AggregatorWorkspace& ws) const;

 private:
  CoresetConfig config_;
  std::string rule_;
  std::unique_ptr<GradientAggregator> inner_;
  std::string label_;
  int kind_;  // weighted-kernel dispatch tag (see coreset.cpp)
};

}  // namespace abft::agg

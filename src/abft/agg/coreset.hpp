// Coreset pre-reduction: shrink an n-row GradientBatch to a weighted coreset
// of m = k + z rows (z = f) before the exact registry rule runs, taking the
// per-round cost of the Gram-based family from O(n^2 d) to construction +
// O(m^2 d).  Two reducer kinds share the weighted-kernel stage:
//
// k-center (the default; greedy farthest-point with outliers, after Ding et
// al., O(n k d) — the constant driven low by a column-major SIMD pass):
//   1. the seed center is the row nearest the coordinate-wise median of the
//      batch (a robust pivot an adversary cannot drag far with f rows);
//   2. each further center is the (z+1)-th farthest row from the selected
//      centers under incrementally maintained nearest-center squared
//      distances — stepping z rows in from the far end means up to z
//      adversarial outliers cannot steer center placement.  The distance
//      maintenance runs blocked over fixed row blocks: each block keeps a
//      bounded size-(z+1) farthest-point queue that is rebuilt lazily, not
//      every round — a queue stays valid while the global selection
//      threshold sits at or above the block's recorded epoch bound (rows it
//      excluded were less far than the bound then, and distances only
//      decrease), and selection iterates merge -> threshold -> refill
//      violating blocks to a fixpoint, which provably recovers the exact
//      global top-(z+1) under the strict total order (distance descending,
//      ties to the lower row id).  Distances are computed on a column-major
//      transpose in 1024-row sub-chunks so the kernel vectorizes across
//      rows — each row's sum still accumulates in ascending-coordinate
//      order, so the values do not depend on the vector width or the
//      thread count;
//   3. after k centers, the z farthest remaining rows are carried verbatim
//      as weight-1 singletons, and every other row folds into its nearest
//      center's multiplicity weight.  Weights are integers summing to
//      exactly n.
//   size: "adaptive" grows k from f + 1, doubling between checkpoints,
//   until the covering radius stops improving by a fixed factor (0.7 per
//   doubling) or k reaches n - f - 1.
//
// sample (norm-stratified weighted sampling, O(n d + n log n) construction):
//   rows are ranked by Euclidean norm (ties to the lower row id); the f
//   largest-norm rows ride as weight-1 singletons (the same outlier budget
//   as k-center), and the remaining body is cut into `strata` equal-count
//   norm bands, each band into near-equal rank cells — one deterministic
//   pseudo-random representative per cell carries the cell count as its
//   weight.  Cheap enough that construction never dominates; compared
//   against k-center under the same drift harness in tests/test_coreset.cpp.
//
// Semantics: the inner rule is evaluated on the *replicated multiset* — the
// virtual batch where coreset row i appears weight_i times (centers first in
// selection order, then the singletons in ascending row order).  Every
// registry rule now runs a weighted-native kernel that reproduces the
// replicated-multiset result exactly (up to floating-point summation order):
// the mean-like family (average, cge, normclip, cclip, geomed), the
// rank-based family (cwtm, cwmed, krum, multikrum), gmom (weighted bucket
// means feeding the batched Weiszfeld) and bulyan (weighted iterated-Krum
// selection over the coreset Gram plus a weighted trimmed stage 2).  No path
// materializes an O(n d) replicated batch.  The reduction is lossy by
// design: the weighted result drifts from the flat exact rule by at most the
// aggregation's Lipschitz constant times the covering radius; the seeded
// tolerance suite in tests/test_coreset.cpp bounds that drift per rule and
// attack preset.  When reduction cannot help (k + z >= n), the reducer
// delegates to the inner rule on the original batch bit-identically.
//
// Determinism: selection ties break on the lowest row id, assignment ties on
// the earliest center, the row-block decomposition is a pure function of
// (n, z), each block writes only its own state, and the block queues merge
// in index order — so the reduced aggregate is a pure function of
// (batch, f, config, mode), bit-identical at every thread count.  (Fast mode
// may take a runtime-dispatched AVX-512 distance kernel whose summation
// order differs from exact mode; each mode is individually deterministic.)
#pragma once

#include <memory>
#include <string>

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

struct CoresetConfig {
  /// Reduction strategy: greedy k-center with outliers (the default), or
  /// norm-stratified weighted sampling.
  enum class Kind { kcenter, sample };

  /// size sentinel (k-center only): grow k until the covering radius stops
  /// improving by a fixed factor.
  static constexpr int kAdaptiveSize = -1;

  /// Number of reduced rows k (the coreset additionally carries z = f
  /// singleton rows).  0 (the default) derives k = f + ceil(sqrt(n)) per
  /// call, the size at which construction and reduced aggregation balance.
  /// kAdaptiveSize selects the adaptive growth policy (k-center only).
  int size = 0;

  Kind kind = Kind::kcenter;

  /// sample only: number of norm bands.  0 (the default) derives
  /// min(8, k) per call.  Must be 0 for k-center.
  int strata = 0;
};

/// Stable label, e.g. "coreset-64-krum" ("coreset-auto-krum" for the derived
/// size, "coreset-adaptive-krum" for the adaptive policy; the sample kind
/// spells "sample-64-krum"/"sample-auto-krum").  Doubles as the spec-layer
/// aggregator spelling; uses only run-id/CSV-safe characters.
std::string coreset_label(const CoresetConfig& config, std::string_view rule);

class CoresetReducer final : public GradientAggregator {
 public:
  /// Wraps the named registry rule.  Throws std::invalid_argument on an
  /// unknown rule name or an invalid config (size < 0 other than
  /// kAdaptiveSize, adaptive or nonzero strata with the wrong kind).
  explicit CoresetReducer(std::string_view rule, CoresetConfig config = {});

  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return label_; }
  /// Forwarded from the inner rule: preconditions are stated on the
  /// replicated multiset, whose size is exactly n.
  [[nodiscard]] int max_usable_f(int n) const noexcept override;
  [[nodiscard]] int min_usable_f() const noexcept override;

  [[nodiscard]] const CoresetConfig& config() const noexcept { return config_; }

  /// True when the (n, f) shape actually reduces: k(n, f) + f < n (for the
  /// adaptive policy, when the minimum k = f + 1 fits).  Otherwise
  /// aggregate_into delegates to the inner rule bit-identically.
  [[nodiscard]] bool would_reduce(int n, int f) const noexcept;

  /// The reduced row count k for an (n, f) call: config.size, the derived
  /// f + ceil(sqrt(n)) when size == 0, or the adaptive policy's upper bound
  /// n - f - 1 (the realized adaptive k is reported by reduce()).
  [[nodiscard]] int centers_for(int n, int f) const noexcept;

  /// Runs the construction pass only: fills ws.coreset_batch (m x d),
  /// ws.coreset_ids and ws.coreset_weights, and returns m.  Exposed so the
  /// property suite can audit selection, weights and outlier exclusion
  /// directly.  Requires would_reduce(n, f).
  int reduce(const GradientBatch& batch, int f, AggregatorWorkspace& ws) const;

 private:
  CoresetConfig config_;
  std::string rule_;
  std::unique_ptr<GradientAggregator> inner_;
  std::string label_;
  int kind_;  // weighted-kernel dispatch tag (see coreset.cpp)
};

}  // namespace abft::agg

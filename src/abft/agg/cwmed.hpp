// Coordinate-wise median — the f-independent limit of CWTM; a standard
// robust-aggregation baseline (see the paper's Section 2.2 survey).
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

class CwmedAggregator final : public GradientAggregator {
 public:
  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "cwmed"; }
};

}  // namespace abft::agg

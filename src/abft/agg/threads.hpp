// Persistent worker-thread pool for round-level and kernel-level
// parallelism.  The legacy parallel_for in batch.hpp spawns and joins a
// fresh thread team on every call (tens of microseconds); a ThreadPool pays
// that cost once and then dispatches static chunks over sleeping workers, so
// drivers can parallelize per-round work (honest-gradient computation, the
// p2p per-node filter loop) as well as the coordinate/pair loops inside the
// aggregation kernels.
//
// Determinism contract: parallel_for partitions [begin, end) into at most
// `width` contiguous chunks and runs fn(lo, hi) on each exactly once.  The
// partition is a pure function of (begin, end, width) — never of timing — so
// any computation whose per-index work is self-contained (each index reads
// shared inputs and writes its own output slot) produces bit-identical
// results at every thread count.  Every parallel site in this library is
// written to that rule; the determinism tests in tests/test_determinism.cpp
// enforce it end-to-end.
//
// The pool is not re-entrant, but nested dispatch is safe: a parallel_for
// issued from inside a running chunk (any pool) detects the nesting through
// a thread-local flag and degenerates to a direct serial call instead of
// deadlocking on the job slot.  Drivers still use the pool at exactly one
// level per phase — the fallback is a guard rail, not a scheduling feature.
//
// Exceptions: a chunk may throw.  The first exception raised (the calling
// thread's own chunk wins over workers') is captured and rethrown from
// parallel_for after every participating chunk has finished — remaining
// chunks are not cancelled, so partial side effects follow the same
// disjoint-writes rule as normal completion.  The pool stays usable after
// a throwing job.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace abft::agg {

namespace detail {
/// True while the current thread is executing a ThreadPool chunk (caller or
/// worker, any pool).  parallel_for consults it for the nested fallback.
bool& this_thread_in_pool_job() noexcept;
}  // namespace detail

class ThreadPool {
 public:
  /// A pool of total width `width` (the calling thread participates, so
  /// width - 1 workers are spawned; width <= 1 spawns none).
  explicit ThreadPool(int width);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int width() const noexcept { return width_; }

  /// Runs fn(lo, hi) over a static partition of [begin, end) using up to
  /// min(max_width, width()) threads including the caller.  Degenerates to a
  /// direct fn(begin, end) call when one thread suffices or when the caller
  /// is itself inside a pool chunk (nested dispatch) — those paths touch no
  /// synchronization at all.  If any chunk throws, the first exception is
  /// rethrown here after all chunks finish.
  template <typename Fn>
  void parallel_for(int begin, int end, int max_width, Fn&& fn) {
    const int range = end - begin;
    if (range <= 0) return;
    const int workers = std::min({max_width, width_, range});
    if (workers <= 1 || detail::this_thread_in_pool_job()) {
      fn(begin, end);
      return;
    }
    using Callable = std::remove_reference_t<Fn>;
    run_chunks(begin, end, workers,
               [](void* ctx, int lo, int hi) { (*static_cast<Callable*>(ctx))(lo, hi); },
               const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

 private:
  using InvokeFn = void (*)(void* ctx, int lo, int hi);

  /// Publishes one job (begin, end, workers, invoke, ctx), runs chunk 0 on
  /// the calling thread, blocks until every participating worker is done,
  /// and rethrows the job's first exception (caller's chunk preferred).
  void run_chunks(int begin, int end, int workers, InvokeFn invoke, void* ctx);
  void worker_loop(int slot);

  int width_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Job slot, written under mutex_ by run_chunks and read under mutex_ by
  // the workers; stable for the duration of one generation.
  std::uint64_t generation_ = 0;
  int job_begin_ = 0;
  int job_end_ = 0;
  int job_workers_ = 0;
  int job_chunk_ = 0;
  InvokeFn job_invoke_ = nullptr;
  void* job_ctx_ = nullptr;
  int pending_ = 0;
  bool stop_ = false;
  std::exception_ptr worker_error_;  ///< first worker exception of the job
};

}  // namespace abft::agg

// Persistent worker-thread pool for round-level and kernel-level
// parallelism.  The legacy parallel_for in batch.hpp spawns and joins a
// fresh thread team on every call (tens of microseconds); a ThreadPool pays
// that cost once and then dispatches static chunks over sleeping workers, so
// drivers can parallelize per-round work (honest-gradient computation, the
// p2p per-node filter loop) as well as the coordinate/pair loops inside the
// aggregation kernels.
//
// Determinism contract: parallel_for partitions [begin, end) into at most
// `width` contiguous chunks and runs fn(lo, hi) on each exactly once.  The
// partition is a pure function of (begin, end, width) — never of timing — so
// any computation whose per-index work is self-contained (each index reads
// shared inputs and writes its own output slot) produces bit-identical
// results at every thread count.  Every parallel site in this library is
// written to that rule; the determinism tests in tests/test_determinism.cpp
// enforce it end-to-end.
//
// The pool is NOT re-entrant: fn must not call parallel_for on the same
// pool.  Drivers therefore use the pool at exactly one level per phase
// (round-level phases hand the kernels a serial workspace, and vice versa).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace abft::agg {

class ThreadPool {
 public:
  /// A pool of total width `width` (the calling thread participates, so
  /// width - 1 workers are spawned; width <= 1 spawns none).
  explicit ThreadPool(int width);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int width() const noexcept { return width_; }

  /// Runs fn(lo, hi) over a static partition of [begin, end) using up to
  /// min(max_width, width()) threads including the caller.  Degenerates to a
  /// direct fn(begin, end) call when one thread suffices — that path touches
  /// no synchronization at all.  fn must not throw and must not re-enter the
  /// pool.
  template <typename Fn>
  void parallel_for(int begin, int end, int max_width, Fn&& fn) {
    const int range = end - begin;
    if (range <= 0) return;
    const int workers = std::min({max_width, width_, range});
    if (workers <= 1) {
      fn(begin, end);
      return;
    }
    using Callable = std::remove_reference_t<Fn>;
    run_chunks(begin, end, workers,
               [](void* ctx, int lo, int hi) { (*static_cast<Callable*>(ctx))(lo, hi); },
               const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

 private:
  using InvokeFn = void (*)(void* ctx, int lo, int hi);

  /// Publishes one job (begin, end, workers, invoke, ctx), runs chunk 0 on
  /// the calling thread and blocks until every participating worker is done.
  void run_chunks(int begin, int end, int workers, InvokeFn invoke, void* ctx);
  void worker_loop(int slot);

  int width_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Job slot, written under mutex_ by run_chunks and read under mutex_ by
  // the workers; stable for the duration of one generation.
  std::uint64_t generation_ = 0;
  int job_begin_ = 0;
  int job_end_ = 0;
  int job_workers_ = 0;
  int job_chunk_ = 0;
  InvokeFn job_invoke_ = nullptr;
  void* job_ctx_ = nullptr;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace abft::agg

// Name-based construction of gradient filters, so benches and examples can
// select a rule from the command line.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

/// Constructs the aggregator with the given registry name.  Known names:
/// "average", "cge", "cwtm", "cwmed", "krum", "multikrum", "geomed", "gmom",
/// "bulyan", "normclip", "cclip".  Throws std::invalid_argument for unknown
/// names.
std::unique_ptr<GradientAggregator> make_aggregator(std::string_view name);

/// All registry names, in a stable order.
std::vector<std::string_view> aggregator_names();

/// Parses "exact" / "fast" (the command-line spelling used by benches and
/// examples) into an AggMode.  Throws std::invalid_argument otherwise.
AggMode agg_mode_from_string(std::string_view name);

/// Stable spelling of an AggMode ("exact" / "fast").
std::string_view to_string(AggMode mode) noexcept;

/// Parses "f64" / "f32" into a Precision.  Throws std::invalid_argument
/// otherwise.  The f32 lane only applies under AggMode::fast; callers that
/// accept both knobs validate the combination (exact + f32 is rejected at
/// parse time, not silently ignored).
Precision precision_from_string(std::string_view name);

/// Stable spelling of a Precision ("f64" / "f32").
std::string_view to_string(Precision precision) noexcept;

}  // namespace abft::agg

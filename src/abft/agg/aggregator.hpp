// Gradient-filter (robust gradient aggregation) interface — Section 4's
// GradFilter : R^{d x n} -> R^d.  The server hands the filter all n received
// gradients plus the fault-tolerance parameter f.
//
// Two entry points:
//   aggregate(span, f)                      — the original allocating API.
//   aggregate_into(out, batch, f, ws)       — the batched hot path: gradients
//     arrive packed in a contiguous GradientBatch, every rule draws scratch
//     from the caller's AggregatorWorkspace, and the steady state performs
//     no heap allocation.  The base class provides an adapter so rules that
//     only implement the span API keep working.
#pragma once

#include <span>
#include <string_view>

#include "abft/agg/batch.hpp"
#include "abft/linalg/vector.hpp"

namespace abft::agg {

using linalg::Vector;

class GradientAggregator {
 public:
  virtual ~GradientAggregator() = default;

  /// Aggregates n received gradients assuming at most f of them are faulty.
  /// Preconditions (checked): gradients non-empty and equal-dimension,
  /// 0 <= f, and f small enough for the specific rule (documented per rule).
  [[nodiscard]] virtual Vector aggregate(std::span<const Vector> gradients, int f) const = 0;

  /// Batched aggregation into a caller-owned output vector.  The default
  /// implementation adapts through the span API (unpacking the batch, which
  /// allocates); every registry rule overrides it with an allocation-free
  /// kernel.  `out` is resized to the batch dimension.
  virtual void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                              AggregatorWorkspace& workspace) const;

  /// Convenience wrapper around aggregate_into for callers that want a fresh
  /// Vector (tests, examples); not for the hot path.
  [[nodiscard]] Vector aggregate_batched(const GradientBatch& batch, int f,
                                         AggregatorWorkspace& workspace) const;

  /// The largest f this rule accepts for n gradients (the rule's own
  /// precondition, e.g. n > 2f for CWTM), or -1 when the rule cannot run on
  /// n gradients at any f.  Round engines clamp the declared fault bound to
  /// min(f, max_usable_f(n)) so a round in which delivery shrinks n
  /// (elimination, partial participation, stragglers, churn) still
  /// aggregates with the strongest f the rule tolerates instead of throwing
  /// — and hold position on a -1 round.  The default is the generic batch
  /// precondition f < n.
  [[nodiscard]] virtual int max_usable_f(int n) const noexcept { return n - 1; }

  /// The smallest f this rule can run with at all (Bulyan's selection
  /// schedule requires f >= 1); engines hold position when the shrunk bound
  /// falls below it.  The default is the generic f >= 0.
  [[nodiscard]] virtual int min_usable_f() const noexcept { return 0; }

  /// Stable identifier, e.g. "cge"; used by the registry and bench labels.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Validates the shared preconditions; returns the common dimension.
int validate_gradients(std::span<const Vector> gradients, int f);

}  // namespace abft::agg

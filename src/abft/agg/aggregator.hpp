// Gradient-filter (robust gradient aggregation) interface — Section 4's
// GradFilter : R^{d x n} -> R^d.  The server hands the filter all n received
// gradients plus the fault-tolerance parameter f.
#pragma once

#include <span>
#include <string_view>

#include "abft/linalg/vector.hpp"

namespace abft::agg {

using linalg::Vector;

class GradientAggregator {
 public:
  virtual ~GradientAggregator() = default;

  /// Aggregates n received gradients assuming at most f of them are faulty.
  /// Preconditions (checked): gradients non-empty and equal-dimension,
  /// 0 <= f, and f small enough for the specific rule (documented per rule).
  [[nodiscard]] virtual Vector aggregate(std::span<const Vector> gradients, int f) const = 0;

  /// Stable identifier, e.g. "cge"; used by the registry and bench labels.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Validates the shared preconditions; returns the common dimension.
int validate_gradients(std::span<const Vector> gradients, int f);

}  // namespace abft::agg

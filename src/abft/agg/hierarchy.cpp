#include "abft/agg/hierarchy.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "abft/agg/registry.hpp"
#include "abft/util/check.hpp"
#include "abft/util/rng.hpp"

namespace abft::agg {

namespace {

/// Balanced contiguous split: shard s holds rows [boundary(s), boundary(s+1))
/// of the assignment permutation, sizes n/S or n/S + 1.
int shard_boundary(int n, int num_shards, int shard) {
  return static_cast<int>(static_cast<long long>(n) * shard / num_shards);
}

}  // namespace

namespace {

/// Leaf factory: the plain registry rule, or the coreset-wrapped rule when
/// per-shard reduction is configured.  CoresetReducer forwards
/// max_usable_f/min_usable_f to the inner rule, so every piece of the
/// (n_s, f_s) bookkeeping above is untouched by the wrapping.
std::unique_ptr<GradientAggregator> make_leaf(const HierarchyConfig& config) {
  if (config.coreset.has_value()) {
    return std::make_unique<CoresetReducer>(config.leaf_rule, *config.coreset);
  }
  return make_aggregator(config.leaf_rule);
}

}  // namespace

std::string hierarchy_label(const HierarchyConfig& config) {
  std::string label =
      "hier-" + std::to_string(config.shards) + "-" + config.leaf_rule + "-" + config.root_rule;
  if (config.f_leaf >= 0) label += "-fl" + std::to_string(config.f_leaf);
  if (config.coreset.has_value()) {
    label += config.coreset->kind == CoresetConfig::Kind::sample ? "-sm" : "-cs";
    if (config.coreset->size == CoresetConfig::kAdaptiveSize) {
      label += "adaptive";
    } else {
      label += config.coreset->size > 0 ? std::to_string(config.coreset->size)
                                        : std::string("auto");
    }
  }
  return label;
}

std::string hierarchy_label(const HierarchyConfig& config, int n) {
  HierarchyConfig effective = config;
  effective.shards = std::min(config.shards, std::max(n, 1));
  return hierarchy_label(effective);
}

HierarchicalAggregator::HierarchicalAggregator(HierarchyConfig config)
    : config_(std::move(config)),
      leaf_(make_leaf(config_)),
      root_(make_aggregator(config_.root_rule)),
      label_(hierarchy_label(config_)) {
  ABFT_REQUIRE(config_.shards >= 1, "hierarchy: shards must be >= 1");
  ABFT_REQUIRE(config_.f_leaf >= -1, "hierarchy: f_leaf must be >= 0, or -1 for auto");
}

HierarchyBounds HierarchicalAggregator::bounds(int n, int f) const {
  ABFT_REQUIRE(n >= 1, "hierarchy bounds need n >= 1");
  ABFT_REQUIRE(0 <= f && f < n, "hierarchy bounds need 0 <= f < n");
  HierarchyBounds b;
  b.n = n;
  b.shards = std::min(config_.shards, n);
  b.shard_rows_min = n / b.shards;
  b.shard_rows_max = n / b.shards + (n % b.shards != 0 ? 1 : 0);
  const auto unusable = [&b]() {
    b.f_leaf = b.f_root = b.tolerated_f = -1;
    b.resilience_margin = 0.0;
    return b;
  };
  if (b.shards <= 1) {
    // Flat delegation: one level, the leaf rule's own precondition governs.
    // An explicit f_leaf pins the executed budget here exactly as in the
    // tree case — aggregate_into runs the leaf with b.f_leaf, never raw f.
    const int cap = leaf_->max_usable_f(n);
    if (cap < leaf_->min_usable_f()) return unusable();
    const int requested = config_.f_leaf >= 0 ? config_.f_leaf : f;
    b.f_leaf = std::clamp(requested, leaf_->min_usable_f(), cap);
    b.f_root = 0;
    b.tolerated_f = b.f_leaf;
  } else {
    // max_usable_f is non-decreasing in n for every registry rule, so the
    // smallest shard is the binding one.
    const int leaf_cap = leaf_->max_usable_f(b.shard_rows_min);
    if (leaf_cap < leaf_->min_usable_f()) return unusable();
    const int requested = config_.f_leaf >= 0 ? config_.f_leaf : f;
    b.f_leaf = std::clamp(requested, leaf_->min_usable_f(), leaf_cap);
    const int root_cap = root_->max_usable_f(b.shards);
    if (root_cap < root_->min_usable_f()) return unusable();
    // floor(f / (f_leaf+1)) shards can be fully corrupted by f total faults;
    // that is the budget the root must absorb.
    b.f_root = std::clamp(f / (b.f_leaf + 1), root_->min_usable_f(), root_cap);
    b.tolerated_f = std::min(n - 1, (b.f_leaf + 1) * (b.f_root + 1) - 1);
  }
  b.resilience_margin = 2.0 * static_cast<double>(b.tolerated_f) / static_cast<double>(n);
  return b;
}

int HierarchicalAggregator::max_usable_f(int n) const noexcept {
  if (n < 1) return -1;
  const int num_shards = std::min(config_.shards, n);
  if (num_shards <= 1) {
    const int cap = leaf_->max_usable_f(n);
    if (cap < leaf_->min_usable_f()) return -1;
    return config_.f_leaf >= 0 ? std::clamp(config_.f_leaf, leaf_->min_usable_f(), cap) : cap;
  }
  const int rows_min = n / num_shards;
  const int leaf_cap = leaf_->max_usable_f(rows_min);
  if (leaf_cap < leaf_->min_usable_f()) return -1;
  // Explicit f_leaf pins the per-shard budget (clamped into the leaf's
  // usable range); auto mode can raise it as far as the leaf cap.
  const int leaf_budget =
      config_.f_leaf >= 0 ? std::clamp(config_.f_leaf, leaf_->min_usable_f(), leaf_cap)
                          : leaf_cap;
  const int root_cap = root_->max_usable_f(num_shards);
  if (root_cap < root_->min_usable_f()) return -1;
  return std::min(n - 1, (leaf_budget + 1) * (root_cap + 1) - 1);
}

int HierarchicalAggregator::min_usable_f() const noexcept {
  // Any declared f >= 0 is absorbable at every shard count: bounds() clamps
  // the executed per-level budgets UP to the leaf/root rules' own floors, so
  // a leaf with a positive minimum (bulyan) still runs with f_leaf at its
  // floor.  The S = 1 flat delegation follows the same contract — it executes
  // the clamped b.f_leaf, never raw f — so it no longer inherits the leaf's
  // floor.  Keeping this at 0 also keeps the cap consistent with
  // aggregate_into's delegation decision when a thin round shrinks the
  // delivered row count to 1 (num_shards = min(shards, n)).
  return 0;
}

Vector HierarchicalAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  GradientBatch batch;
  batch.pack(gradients);
  AggregatorWorkspace workspace;
  Vector out;
  aggregate_into(out, batch, f, workspace);
  return out;
}

void HierarchicalAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                            AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  const int num_shards = std::min(config_.shards, n);
  if (num_shards <= 1) {
    // Execute exactly the budget bounds() reports: clamped into the leaf's
    // usable range and pinned by an explicit f_leaf.  Raw f would desync the
    // executed filter from the reported bounds (and a leaf with a positive
    // floor, e.g. bulyan, would throw mid-run on an engine-approved f = 0).
    const HierarchyBounds flat = bounds(n, f);
    ABFT_REQUIRE(flat.tolerated_f >= 0,
                 "hierarchy: the leaf rule cannot run on this row count at all");
    ABFT_REQUIRE(f <= flat.tolerated_f,
                 "hierarchy: declared f exceeds the flat-delegation budget — lower f or drop "
                 "the explicit f_leaf");
    leaf_->aggregate_into(out, batch, flat.f_leaf, ws);
    return;
  }
  const HierarchyBounds b = bounds(n, f);
  ABFT_REQUIRE(b.tolerated_f >= 0,
               "hierarchy: the leaf/root rules cannot run on this shape — fewer shards or a "
               "different rule");
  ABFT_REQUIRE(f <= b.tolerated_f,
               "hierarchy: declared f exceeds the tree's tolerated bound "
               "(f_leaf+1)(f_root+1)-1 — lower f or raise f_leaf/shards");

  // Seeded deterministic shard assignment, regenerated per call because the
  // row count may change round to round (elimination, churn, stragglers).
  ws.hier_perm.resize(static_cast<std::size_t>(n));
  std::iota(ws.hier_perm.begin(), ws.hier_perm.end(), 0);
  if (config_.assignment_seed != 0) {
    util::Rng rng(config_.assignment_seed);
    for (int i = n - 1; i > 0; --i) {
      const int j = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(i) + 1));
      std::swap(ws.hier_perm[static_cast<std::size_t>(i)],
                ws.hier_perm[static_cast<std::size_t>(j)]);
    }
  }

  ws.hier_root.reshape(num_shards, d);
  // Shards are partitioned over up to parallel_threads worker groups; each
  // group reuses ONE sub-workspace/gather-batch across its shards, so the
  // scratch footprint is width * O((n/S)^2), never S * O((n/S)^2).  Shard
  // results do not depend on the grouping (kernels recompute all derived
  // state per call), so the output is bit-identical at every width.
  const int width = std::max(1, std::min(ws.parallel_threads, num_shards));
  while (static_cast<int>(ws.hier_groups.size()) < width) {
    ws.hier_groups.push_back(std::make_unique<AggregatorWorkspace>());
  }
  if (static_cast<int>(ws.hier_gather.size()) < width) {
    ws.hier_gather.resize(static_cast<std::size_t>(width));
  }
  if (static_cast<int>(ws.hier_out.size()) < width) {
    ws.hier_out.resize(static_cast<std::size_t>(width));
  }
  ws.run_parallel(0, width, [&](int group_begin, int group_end) {
    for (int g = group_begin; g < group_end; ++g) {
      AggregatorWorkspace& sub = *ws.hier_groups[static_cast<std::size_t>(g)];
      sub.mode = ws.mode;
      sub.precision = ws.precision;
      sub.parallel_threads = 1;  // the group IS the parallel unit
      sub.pool = nullptr;
      GradientBatch& gather = ws.hier_gather[static_cast<std::size_t>(g)];
      Vector& shard_out = ws.hier_out[static_cast<std::size_t>(g)];
      const int shards_begin = shard_boundary(num_shards, width, g);
      const int shards_end = shard_boundary(num_shards, width, g + 1);
      for (int s = shards_begin; s < shards_end; ++s) {
        const int row_begin = shard_boundary(n, num_shards, s);
        const int rows = shard_boundary(n, num_shards, s + 1) - row_begin;
        gather.reshape(rows, d);
        for (int r = 0; r < rows; ++r) {
          gather.set_row(r, batch.row(ws.hier_perm[static_cast<std::size_t>(row_begin + r)]));
        }
        // This shard may hold one row more than shard_rows_min; never hand
        // the leaf a weaker budget than the tree accounted for, only a
        // stronger one where the extra row allows it.
        const int shard_f = std::max(std::min(b.f_leaf, leaf_->max_usable_f(rows)),
                                     leaf_->min_usable_f());
        leaf_->aggregate_into(shard_out, gather, shard_f, sub);
        const auto coeffs = shard_out.coefficients();
        ws.hier_root.set_row(s, std::span<const double>(coeffs.data(), coeffs.size()));
      }
    }
  });
  // The root draws scratch from the caller's workspace; kernels never touch
  // the hier_* members, so ws.hier_root is stable input for the duration.
  root_->aggregate_into(out, ws.hier_root, b.f_root, ws);
}

}  // namespace abft::agg

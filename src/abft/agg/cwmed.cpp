#include "abft/agg/cwmed.hpp"

#include <algorithm>
#include <cstdint>

#include "abft/agg/rank_kernel.hpp"

namespace abft::agg {

Vector CwmedAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  const std::size_t n = gradients.size();
  Vector out(dim);
  std::vector<double> column(n);
  for (int k = 0; k < dim; ++k) {
    for (std::size_t i = 0; i < n; ++i) column[i] = gradients[i][k];
    std::sort(column.begin(), column.end());
    out[k] = (n % 2 == 1) ? column[n / 2] : 0.5 * (column[n / 2 - 1] + column[n / 2]);
  }
  return out;
}

namespace {

/// Rank-classified median (see rank_kernel.hpp): for duplicate-free columns
/// the median entries are exactly those with rank n/2 (and n/2 - 1 when n
/// is even).  Duplicates (rank sum short of n(n-1)/2) report ok = false;
/// the caller falls back to exact selection.
double median_rank(const double* col, int n, bool& ok) {
  std::int64_t lt[detail::kRankKernelCapacity];
  detail::rank_counts(col, n, lt);
  const std::int64_t hi_rank = n / 2;
  const std::int64_t lo_rank = n / 2 - 1;
  double hi = 0.0, lo = 0.0;
  std::int64_t ranksum = 0;
  for (int j = 0; j < n; ++j) {
    ranksum += lt[j];
    hi += lt[j] == hi_rank ? col[j] : 0.0;
    lo += lt[j] == lo_rank ? col[j] : 0.0;
  }
  ok = ranksum == static_cast<std::int64_t>(n) * (n - 1) / 2;
  return n % 2 == 0 ? 0.5 * (lo + hi) : hi;
}

// Float32-lane variants: demoted columns through the 16-wide f32 rank
// kernel (or nth_element fallback); the selected entries promote to double
// on emission, so the only drift versus the f64 lane is the demotion.

double median_rank_f32(const float* col, int n, bool& ok) {
  std::int32_t lt[detail::kRankKernelCapacity];
  detail::rank_counts(col, n, lt);
  const std::int32_t hi_rank = n / 2;
  const std::int32_t lo_rank = n / 2 - 1;
  double hi = 0.0, lo = 0.0;
  std::int64_t ranksum = 0;
  for (int j = 0; j < n; ++j) {
    ranksum += lt[j];
    hi += lt[j] == hi_rank ? static_cast<double>(col[j]) : 0.0;
    lo += lt[j] == lo_rank ? static_cast<double>(col[j]) : 0.0;
  }
  ok = ranksum == static_cast<std::int64_t>(n) * (n - 1) / 2;
  return n % 2 == 0 ? 0.5 * (lo + hi) : hi;
}

double median_inplace_f32(float* first, float* last) {
  const std::size_t m = static_cast<std::size_t>(last - first);
  float* mid = first + m / 2;
  std::nth_element(first, mid, last);
  if (m % 2 == 1) return static_cast<double>(*mid);
  const double hi = static_cast<double>(*mid);
  const double lo = static_cast<double>(*std::max_element(first, mid));
  return 0.5 * (lo + hi);
}

}  // namespace

void CwmedAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                     AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  resize_output(out, d);
  auto result = out.coefficients();
  // The rank-classified median picks the same element(s) as nth_element, so
  // unlike CWTM the routing truly never changes output here; exact mode
  // still pins the constant crossover so its code path (and therefore its
  // performance profile) is reproducible, while fast mode calibrates.  The
  // ABFT_RANK_KERNEL_CUTOFF override (0 = rank kernel off) wins in both.
  const int rank_cutoff = detail::effective_rank_cutoff(ws.mode);
  const bool use_rank_kernel = n > 1 && n <= rank_cutoff;
  if (ws.f32_lane()) {
    // f32 lane: the transpose and every column median run on demoted
    // entries, promoted to double on emission.
    ws.fill_colmajor_f32(batch);
    ws.run_parallel(0, d, [&](int k_begin, int k_end) {
      for (int k = k_begin; k < k_end; ++k) {
        float* col =
            ws.colmajor_f32.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
        if (use_rank_kernel) {
          bool ok = false;
          const double med = median_rank_f32(col, n, ok);
          if (ok) {
            result[static_cast<std::size_t>(k)] = med;
            continue;
          }
        }
        result[static_cast<std::size_t>(k)] = median_inplace_f32(col, col + n);
      }
    });
    return;
  }
  ws.fill_colmajor(batch);
  ws.run_parallel(0, d, [&](int k_begin, int k_end) {
    for (int k = k_begin; k < k_end; ++k) {
      double* col = ws.colmajor.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
      if (use_rank_kernel) {
        bool ok = false;
        const double med = median_rank(col, n, ok);
        if (ok) {
          result[static_cast<std::size_t>(k)] = med;
          continue;
        }
      }
      result[static_cast<std::size_t>(k)] = median_inplace(col, col + n);
    }
  });
}

}  // namespace abft::agg

#include "abft/agg/cwmed.hpp"

#include <algorithm>

namespace abft::agg {

Vector CwmedAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  const std::size_t n = gradients.size();
  Vector out(dim);
  std::vector<double> column(n);
  for (int k = 0; k < dim; ++k) {
    for (std::size_t i = 0; i < n; ++i) column[i] = gradients[i][k];
    std::sort(column.begin(), column.end());
    out[k] = (n % 2 == 1) ? column[n / 2] : 0.5 * (column[n / 2 - 1] + column[n / 2]);
  }
  return out;
}

}  // namespace abft::agg

#include "abft/agg/cclip.hpp"

#include <algorithm>

#include "abft/agg/cwmed.hpp"
#include "abft/util/check.hpp"

namespace abft::agg {

CenteredClipAggregator::CenteredClipAggregator(double tau, int iterations)
    : tau_(tau), iterations_(iterations) {
  ABFT_REQUIRE(iterations > 0, "centered clipping needs at least one iteration");
}

Vector CenteredClipAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  (void)dim;
  const CwmedAggregator median_rule;
  Vector pivot = median_rule.aggregate(gradients, f);

  for (int iter = 0; iter < iterations_; ++iter) {
    double tau = tau_;
    if (tau <= 0.0) {
      // Adaptive radius: median distance from the current pivot.
      std::vector<double> dists(gradients.size());
      for (std::size_t i = 0; i < gradients.size(); ++i) {
        dists[i] = linalg::distance(gradients[i], pivot);
      }
      std::sort(dists.begin(), dists.end());
      const std::size_t n = dists.size();
      tau = (n % 2 == 1) ? dists[n / 2] : 0.5 * (dists[n / 2 - 1] + dists[n / 2]);
      if (tau <= 0.0) return pivot;  // all gradients equal the pivot
    }
    Vector correction(pivot.dim());
    for (const auto& g : gradients) {
      Vector delta = g - pivot;
      const double norm = delta.norm();
      if (norm > tau) delta *= tau / norm;
      correction += delta;
    }
    pivot.add_scaled(1.0 / static_cast<double>(gradients.size()), correction);
  }
  return pivot;
}

ClippedInputAggregator::ClippedInputAggregator(const GradientAggregator& inner)
    : inner_(inner) {}

Vector ClippedInputAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  std::vector<double> norms(gradients.size());
  for (std::size_t i = 0; i < gradients.size(); ++i) norms[i] = gradients[i].norm();
  std::vector<double> sorted = norms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double cap = (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  std::vector<Vector> capped(gradients.begin(), gradients.end());
  for (std::size_t i = 0; i < capped.size(); ++i) {
    if (norms[i] > cap && norms[i] > 0.0) capped[i] *= cap / norms[i];
  }
  return inner_.aggregate(capped, f);
}

}  // namespace abft::agg

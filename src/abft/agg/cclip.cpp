#include "abft/agg/cclip.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "abft/agg/cwmed.hpp"
#include "abft/agg/simd_util.hpp"
#include "abft/util/check.hpp"

namespace abft::agg {

CenteredClipAggregator::CenteredClipAggregator(double tau, int iterations)
    : tau_(tau), iterations_(iterations) {
  ABFT_REQUIRE(iterations > 0, "centered clipping needs at least one iteration");
}

Vector CenteredClipAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  (void)dim;
  const CwmedAggregator median_rule;
  Vector pivot = median_rule.aggregate(gradients, f);

  for (int iter = 0; iter < iterations_; ++iter) {
    double tau = tau_;
    if (tau <= 0.0) {
      // Adaptive radius: median distance from the current pivot.
      std::vector<double> dists(gradients.size());
      for (std::size_t i = 0; i < gradients.size(); ++i) {
        dists[i] = linalg::distance(gradients[i], pivot);
      }
      std::sort(dists.begin(), dists.end());
      const std::size_t n = dists.size();
      tau = (n % 2 == 1) ? dists[n / 2] : 0.5 * (dists[n / 2 - 1] + dists[n / 2]);
      if (tau <= 0.0) return pivot;  // all gradients equal the pivot
    }
    Vector correction(pivot.dim());
    for (const auto& g : gradients) {
      Vector delta = g - pivot;
      const double norm = delta.norm();
      if (norm > tau) delta *= tau / norm;
      correction += delta;
    }
    pivot.add_scaled(1.0 / static_cast<double>(gradients.size()), correction);
  }
  return pivot;
}

void CenteredClipAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                            AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  // Robust pivot: batched coordinate-wise median straight into `out`.
  const CwmedAggregator median_rule;
  median_rule.aggregate_into(out, batch, f, ws);
  auto pivot = out.coefficients();

  // Fast mode swaps the scalar distance reductions (loop-carried FP
  // dependency, never vectorized at -O2) for laned partial sums; iteration
  // structure, clipping rule and pivot updates are unchanged.  The f32 lane
  // additionally runs those distance passes — and the correction's row
  // reads — over the demoted rows (pivot demoted once per iteration), while
  // the correction and pivot update accumulate in f64.  Small rows stay on
  // the f64 paths — the lane's per-row fixed costs outweigh the halved
  // streaming traffic below kF32DistanceLaneMinDim.
  const bool f32 = ws.f32_lane() && d >= detail::kF32DistanceLaneMinDim;
  const bool fast = !f32 && ws.mode == AggMode::fast && d >= 2 * detail::kReduceLanes;
  const float* rows_f32 = nullptr;
  float* pivot_f32 = nullptr;
  if (f32) {
    ws.fill_rows_f32(batch);
    rows_f32 = ws.rows_f32.data();
    ws.vecbuf_f32.resize(static_cast<std::size_t>(d));
    pivot_f32 = ws.vecbuf_f32.data();
  }
  ws.vecbuf.resize(static_cast<std::size_t>(d));
  double* correction = ws.vecbuf.data();
  for (int iter = 0; iter < iterations_; ++iter) {
    if (f32) {
      for (int k = 0; k < d; ++k) {
        pivot_f32[k] = static_cast<float>(pivot[static_cast<std::size_t>(k)]);
      }
    }
    double tau = tau_;
    if (tau <= 0.0) {
      // Adaptive radius: median distance from the current pivot.
      ws.scratch.resize(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        double dist_sq = 0.0;
        if (f32) {
          const float* row =
              rows_f32 + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
          dist_sq = detail::laned_sqdist_f32(row, pivot_f32, d);
        } else if (fast) {
          dist_sq = detail::laned_sqdist(batch.row(i).data(), pivot.data(), d);
        } else {
          const double* row = batch.row(i).data();
          for (int k = 0; k < d; ++k) {
            const double diff = row[k] - pivot[static_cast<std::size_t>(k)];
            dist_sq += diff * diff;
          }
        }
        ws.scratch[static_cast<std::size_t>(i)] = std::sqrt(dist_sq);
      }
      tau = median_inplace(ws.scratch.data(), ws.scratch.data() + n);
      if (tau <= 0.0) return;  // all gradients equal the pivot
    }
    std::fill(correction, correction + d, 0.0);
    for (int i = 0; i < n; ++i) {
      double norm_sq = 0.0;
      if (f32) {
        const float* row =
            rows_f32 + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
        norm_sq = detail::laned_sqdist_f32(row, pivot_f32, d);
      } else if (fast) {
        norm_sq = detail::laned_sqdist(batch.row(i).data(), pivot.data(), d);
      } else {
        const double* row = batch.row(i).data();
        for (int k = 0; k < d; ++k) {
          const double diff = row[k] - pivot[static_cast<std::size_t>(k)];
          norm_sq += diff * diff;
        }
      }
      const double norm = std::sqrt(norm_sq);
      const double s = norm > tau ? tau / norm : 1.0;
      if (f32) {
        const float* row =
            rows_f32 + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
        for (int k = 0; k < d; ++k) {
          correction[k] += s * (static_cast<double>(row[k]) - pivot[static_cast<std::size_t>(k)]);
        }
      } else {
        const double* row = batch.row(i).data();
        for (int k = 0; k < d; ++k) {
          correction[k] += s * (row[k] - pivot[static_cast<std::size_t>(k)]);
        }
      }
    }
    const double inv = 1.0 / static_cast<double>(n);
    for (int k = 0; k < d; ++k) pivot[static_cast<std::size_t>(k)] += inv * correction[k];
  }
}

ClippedInputAggregator::ClippedInputAggregator(const GradientAggregator& inner)
    : inner_(inner) {}

Vector ClippedInputAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  std::vector<double> norms(gradients.size());
  for (std::size_t i = 0; i < gradients.size(); ++i) norms[i] = gradients[i].norm();
  std::vector<double> sorted = norms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double cap = (n % 2 == 1) ? sorted[n / 2] : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  std::vector<Vector> capped(gradients.begin(), gradients.end());
  for (std::size_t i = 0; i < capped.size(); ++i) {
    if (norms[i] > cap && norms[i] > 0.0) capped[i] *= cap / norms[i];
  }
  return inner_.aggregate(capped, f);
}

void ClippedInputAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                            AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  ws.fill_norms(batch);
  ws.scratch.assign(ws.norms.begin(), ws.norms.end());
  const double cap = median_inplace(ws.scratch.data(), ws.scratch.data() + n);
  // Capped copy lives in its own workspace batch (clip_batch) so the inner
  // rule is free to use aux_batch and the other scratch buffers.  Nesting
  // ClippedInput inside ClippedInput would alias clip_batch; don't.
  ws.clip_batch.reshape(n, d);
  for (int i = 0; i < n; ++i) {
    const double norm = ws.norms[static_cast<std::size_t>(i)];
    const double* src = batch.row(i).data();
    double* dst = ws.clip_batch.row(i).data();
    if (norm > cap && norm > 0.0) {
      const double s = cap / norm;
      for (int k = 0; k < d; ++k) dst[k] = src[k] * s;
    } else {
      std::memcpy(dst, src, static_cast<std::size_t>(d) * sizeof(double));
    }
  }
  inner_.aggregate_into(out, ws.clip_batch, f, ws);
}

}  // namespace abft::agg

// Bulyan (El Mhamdi et al., ICML 2018) — a two-stage filter cited in
// Section 2.2: repeatedly select via Krum to build a selection set of
// theta = n - 2f gradients, then output the coordinate-wise average of the
// beta = theta - 2f entries closest to the coordinate-wise median.
// Requires n >= 4f + 3.
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

class BulyanAggregator final : public GradientAggregator {
 public:
  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "bulyan"; }
};

}  // namespace abft::agg

// Bulyan (El Mhamdi et al., ICML 2018) — a two-stage filter cited in
// Section 2.2: repeatedly select via Krum to build a selection set of
// theta = n - 2f gradients, then output the coordinate-wise average of the
// beta = theta - 2f entries closest to the coordinate-wise median.
// Requires n >= 4f + 3.
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

class BulyanAggregator final : public GradientAggregator {
 public:
  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "bulyan"; }
  /// n >= 4f + 3 with f >= 1 (the selection schedule's final round needs a
  /// pool of at least two, which f = 0 never leaves), so n < 7 cannot run
  /// at all (-1).
  [[nodiscard]] int max_usable_f(int n) const noexcept override {
    return n < 7 ? -1 : (n - 3) / 4;
  }
  [[nodiscard]] int min_usable_f() const noexcept override { return 1; }
};

}  // namespace abft::agg

#include "abft/agg/cwtm.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::agg {

Vector CwtmAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  const int n = static_cast<int>(gradients.size());
  ABFT_REQUIRE(n > 2 * f, "cwtm needs n > 2f");
  Vector out(dim);
  std::vector<double> column(gradients.size());
  for (int k = 0; k < dim; ++k) {
    for (std::size_t i = 0; i < gradients.size(); ++i) column[i] = gradients[i][k];
    std::sort(column.begin(), column.end());
    double sum = 0.0;
    for (int j = f; j < n - f; ++j) sum += column[static_cast<std::size_t>(j)];
    out[k] = sum / static_cast<double>(n - 2 * f);
  }
  return out;
}

}  // namespace abft::agg

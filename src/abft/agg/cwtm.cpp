#include "abft/agg/cwtm.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "abft/agg/rank_kernel.hpp"
#include "abft/agg/simd_util.hpp"
#include "abft/util/check.hpp"

namespace abft::agg {

Vector CwtmAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  const int n = static_cast<int>(gradients.size());
  ABFT_REQUIRE(n > 2 * f, "cwtm needs n > 2f");
  Vector out(dim);
  std::vector<double> column(gradients.size());
  for (int k = 0; k < dim; ++k) {
    for (std::size_t i = 0; i < gradients.size(); ++i) column[i] = gradients[i][k];
    std::sort(column.begin(), column.end());
    double sum = 0.0;
    for (int j = f; j < n - f; ++j) sum += column[static_cast<std::size_t>(j)];
    out[k] = sum / static_cast<double>(n - 2 * f);
  }
  return out;
}

namespace {

/// Two nth_element partitions placing the f smallest entries in [0, f) and
/// the f largest in [n - f, n): the kept middle is exactly the sorted
/// column's positions [f, n - f).  Mutates the column (workspace scratch).
void trim_partition(double* col, int n, int f) {
  std::nth_element(col, col + f, col + n);
  std::nth_element(col + f, col + (n - f - 1), col + n);
}

/// Sorted-position trimmed sum of a column via trim_partition.  Fallback
/// for large n and for columns with duplicate entries.
double trimmed_sum_select(double* col, int n, int f) {
  if (f > 0) trim_partition(col, n, f);
  double sum = 0.0;
  for (int j = f; j < n - f; ++j) sum += col[j];
  return sum;
}

/// Rank-classified trimmed sum (see rank_kernel.hpp): an entry is kept iff
/// its rank lies in [f, n - f), which for duplicate-free columns equals
/// positional trimming of the sorted column.  Duplicates make the rank sum
/// fall short of n(n-1)/2; those columns report ok = false and take the
/// exact selection fallback.  Requires n <= detail::kRankKernelCapacity.
double trimmed_sum_rank(const double* col, int n, int f, bool& ok) {
  std::int64_t lt[detail::kRankKernelCapacity];
  detail::rank_counts(col, n, lt);
  double sum = 0.0;
  std::int64_t ranksum = 0;
  for (int j = 0; j < n; ++j) {
    ranksum += lt[j];
    sum += static_cast<std::uint64_t>(lt[j] - f) < static_cast<std::uint64_t>(n - 2 * f)
               ? col[j]
               : 0.0;
  }
  ok = ranksum == static_cast<std::int64_t>(n) * (n - 1) / 2;
  return sum;
}

// Float32-lane variants: demoted columns, the 16-wide f32 rank kernel, and
// double keep-sums (rank classification is value-exact on the demoted
// entries, so the only drift versus f64 fast is the demotion itself).

void trim_partition_f32(float* col, int n, int f) {
  std::nth_element(col, col + f, col + n);
  std::nth_element(col + f, col + (n - f - 1), col + n);
}

double trimmed_sum_select_f32(float* col, int n, int f) {
  if (f > 0) trim_partition_f32(col, n, f);
  double sum = 0.0;
  for (int j = f; j < n - f; ++j) sum += static_cast<double>(col[j]);
  return sum;
}

double trimmed_sum_rank_f32(const float* col, int n, int f, bool& ok) {
  std::int32_t lt[detail::kRankKernelCapacity];
  detail::rank_counts(col, n, lt);
  double sum = 0.0;
  std::int64_t ranksum = 0;
  for (int j = 0; j < n; ++j) {
    ranksum += lt[j];
    // Bitwise keep-select: a float->double conversion inside the ternary
    // compiles to a mispredicting branch, and 0.0 * x would NaN-poison the
    // sum when a trimmed outlier demoted to inf.  Masking the payload keeps
    // the loop branchless and maps dropped entries to an exact +0.0f.
    const std::uint32_t keep =
        static_cast<std::uint32_t>(lt[j] - f) < static_cast<std::uint32_t>(n - 2 * f);
    const float kept = std::bit_cast<float>(std::bit_cast<std::uint32_t>(col[j]) & (0u - keep));
    sum += static_cast<double>(kept);
  }
  ok = ranksum == static_cast<std::int64_t>(n) * (n - 1) / 2;
  return sum;
}

}  // namespace

void CwtmAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                    AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  ABFT_REQUIRE(n > 2 * f, "cwtm needs n > 2f");
  resize_output(out, d);
  auto result = out.coefficients();
  const double inv = 1.0 / static_cast<double>(n - 2 * f);

  // Exact mode pins the historical crossover (its summation order must be
  // reproducible run-to-run); fast mode routes by the per-process
  // calibration, whose host-dependence its tolerance contract permits.  The
  // ABFT_RANK_KERNEL_CUTOFF override (0 = rank kernel off) wins in both.
  const int rank_cutoff = detail::effective_rank_cutoff(ws.mode);
  const bool f32 = ws.f32_lane();
  // The f32 rank tile path pays a full demotion pass (fill_rows_f32) before
  // the tile sweep, which it only recoups once the f64 batch stops fitting
  // in cache and the halved streaming traffic dominates — empirically
  // n * d >= ~4e5 on the calibration host.  Below that (and below one full
  // 16-float mask of rows) the f64 tile path is as fast or faster, so the
  // lane routes back to it; the precision knob is a no-op there.
  const bool f32_rank_tiles = f32 && n >= detail::kReduceLanesF32 &&
                              static_cast<long long>(n) * d >= 400000LL;
  if (f > 0 && n <= rank_cutoff) {
    // Fused gather + rank-select: columns are staged a small tile at a time
    // (tile stays L1-resident, the batch itself is streamed exactly once),
    // so no full d x n transpose is materialized at all.
    constexpr int kTileCols = 16;
    if (f32_rank_tiles) {
      // f32 lane: the tile gathers demoted rows (half the streaming
      // traffic) and ranks them with the 16-wide f32 kernel; kept entries
      // still sum in double.
      ws.fill_rows_f32(batch);
      const float* rows = ws.rows_f32.data();
      ws.run_parallel(0, d, [&](int k_begin, int k_end) {
        float tile[kTileCols * detail::kRankKernelCapacity];
        for (int k0 = k_begin; k0 < k_end; k0 += kTileCols) {
          const int cols = std::min(kTileCols, k_end - k0);
          for (int i = 0; i < n; ++i) {
            const float* row =
                rows + static_cast<std::size_t>(i) * static_cast<std::size_t>(d) + k0;
            for (int c = 0; c < cols; ++c) tile[c * n + i] = row[c];
          }
          for (int c = 0; c < cols; ++c) {
            float* col = tile + c * n;
            bool ok = false;
            double sum = trimmed_sum_rank_f32(col, n, f, ok);
            if (!ok) sum = trimmed_sum_select_f32(col, n, f);
            result[static_cast<std::size_t>(k0 + c)] = sum * inv;
          }
        }
      });
      return;
    }
    ws.run_parallel(0, d, [&](int k_begin, int k_end) {
      double tile[kTileCols * detail::kRankKernelCapacity];
      for (int k0 = k_begin; k0 < k_end; k0 += kTileCols) {
        const int cols = std::min(kTileCols, k_end - k0);
        for (int i = 0; i < n; ++i) {
          const double* row = batch.row(i).data() + k0;
          for (int c = 0; c < cols; ++c) tile[c * n + i] = row[c];
        }
        for (int c = 0; c < cols; ++c) {
          double* col = tile + c * n;
          bool ok = false;
          double sum = trimmed_sum_rank(col, n, f, ok);
          if (!ok) sum = trimmed_sum_select(col, n, f);
          result[static_cast<std::size_t>(k0 + c)] = sum * inv;
        }
      }
    });
    return;
  }

  // Large-n (or f == 0) path: selection over the workspace transpose.  Fast
  // mode keeps the same nth_element partitions but sums the kept range with
  // laned partial sums (the exact path's sequential sum is a loop-carried
  // dependency the compiler cannot vectorize).
  if (f32) {
    // f32 lane: the transpose and every column selection run on demoted
    // entries; the kept range sums in double via the laned f32 reduction.
    ws.fill_colmajor_f32(batch);
    ws.run_parallel(0, d, [&](int k_begin, int k_end) {
      for (int k = k_begin; k < k_end; ++k) {
        float* col =
            ws.colmajor_f32.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
        if (f == 0) {
          result[static_cast<std::size_t>(k)] = detail::laned_sum_f32(col, n) * inv;
        } else {
          trim_partition_f32(col, n, f);
          result[static_cast<std::size_t>(k)] =
              detail::laned_sum_f32(col + f, n - 2 * f) * inv;
        }
      }
    });
    return;
  }
  ws.fill_colmajor(batch);
  const bool fast = ws.mode == AggMode::fast;
  ws.run_parallel(0, d, [&](int k_begin, int k_end) {
    for (int k = k_begin; k < k_end; ++k) {
      double* col = ws.colmajor.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
      if (f == 0) {
        // f == 0 keeps everything: a plain column sum.
        double sum = 0.0;
        if (fast) {
          sum = detail::laned_sum(col, n);
        } else {
          for (int j = 0; j < n; ++j) sum += col[j];
        }
        result[static_cast<std::size_t>(k)] = sum * inv;
      } else if (fast) {
        trim_partition(col, n, f);  // f > 0 here: the f == 0 branch ran above
        result[static_cast<std::size_t>(k)] = detail::laned_sum(col + f, n - 2 * f) * inv;
      } else {
        result[static_cast<std::size_t>(k)] = trimmed_sum_select(col, n, f) * inv;
      }
    }
  });
}

}  // namespace abft::agg

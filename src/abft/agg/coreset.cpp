#include "abft/agg/coreset.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <type_traits>
#include <utility>

#include "abft/agg/geomed.hpp"
#include "abft/agg/registry.hpp"
#include "abft/agg/simd_util.hpp"
#include "abft/util/check.hpp"

namespace abft::agg {

namespace {

// Weighted-kernel dispatch tags — one per registry rule; every rule has a
// weighted-native kernel, so no path materializes the replicated batch.
enum Kind : int {
  kAverage,
  kCge,
  kCwtm,
  kCwmed,
  kKrum,
  kMultiKrum,
  kGeomed,
  kGmom,
  kBulyan,
  kNormclip,
  kCclip,
};

int kind_for(std::string_view rule) {
  if (rule == "average") return kAverage;
  if (rule == "cge") return kCge;
  if (rule == "cwtm") return kCwtm;
  if (rule == "cwmed") return kCwmed;
  if (rule == "krum") return kKrum;
  if (rule == "multikrum") return kMultiKrum;
  if (rule == "geomed") return kGeomed;
  if (rule == "gmom") return kGmom;
  if (rule == "normclip") return kNormclip;
  if (rule == "cclip") return kCclip;
  ABFT_REQUIRE(rule == "bulyan", "coreset: no weighted kernel for this rule");
  return kBulyan;
}

double sqdist_rows(const double* a, const double* b, int d) {
  double sum = 0.0;
  for (int k = 0; k < d; ++k) {
    const double diff = a[k] - b[k];
    sum += diff * diff;
  }
  return sum;
}

/// Value at 0-indexed replicated rank r of the multiset {(value, weight)},
/// pairs sorted ascending by value, integer weights.
double value_at_rank(const std::vector<std::pair<double, double>>& pairs, long long r) {
  long long cum = 0;
  for (const auto& [v, w] : pairs) {
    cum += static_cast<long long>(w);
    if (r < cum) return v;
  }
  return pairs.back().first;
}

/// Replicated-multiset median (n odd: middle element; n even: mean of the
/// two middle elements) — the same contract as median_inplace.
double weighted_median(std::vector<std::pair<double, double>>& pairs, long long n) {
  std::sort(pairs.begin(), pairs.end());
  const double hi = value_at_rank(pairs, n / 2);
  if (n % 2 == 1) return hi;
  return 0.5 * (value_at_rank(pairs, n / 2 - 1) + hi);
}

/// out = (sum_i w_i * g_i) / n — the replicated mean.
void weighted_average(Vector& out, const GradientBatch& cs, const std::vector<double>& w,
                      int n) {
  const int m = cs.rows();
  const int d = cs.cols();
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  for (int i = 0; i < m; ++i) {
    const double* row = cs.row(i).data();
    const double wi = w[static_cast<std::size_t>(i)];
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += wi * row[k];
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] *= inv;
}

/// Replicated CGE: sum (not mean) of the n - f smallest-norm replicated
/// rows, ascending-norm order with ties kept in slot order.
void weighted_cge(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                  int f, AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  ws.fill_norms(cs);
  ws.order.resize(static_cast<std::size_t>(m));
  std::iota(ws.order.begin(), ws.order.end(), 0);
  std::stable_sort(ws.order.begin(), ws.order.end(), [&ws](int a, int b) {
    return ws.norms[static_cast<std::size_t>(a)] < ws.norms[static_cast<std::size_t>(b)];
  });
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  long long budget = n - f;
  for (int s = 0; s < m && budget > 0; ++s) {
    const int i = ws.order[static_cast<std::size_t>(s)];
    const long long take =
        std::min(budget, static_cast<long long>(w[static_cast<std::size_t>(i)]));
    const double* row = cs.row(i).data();
    const double tw = static_cast<double>(take);
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += tw * row[k];
    budget -= take;
  }
}

/// Replicated CWTM: per coordinate, the mean of the replicated values whose
/// sorted positions fall in [f, n - f).
void weighted_cwtm(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                   int f, AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  ABFT_REQUIRE(n > 2 * f, "cwtm needs n > 2f");
  resize_output(out, d);
  auto result = out.coefficients();
  const double inv = 1.0 / static_cast<double>(n - 2 * f);
  auto& pairs = ws.coreset_pairs;
  for (int k = 0; k < d; ++k) {
    pairs.clear();
    for (int i = 0; i < m; ++i) {
      pairs.emplace_back(cs.row(i)[static_cast<std::size_t>(k)],
                         w[static_cast<std::size_t>(i)]);
    }
    std::sort(pairs.begin(), pairs.end());
    double sum = 0.0;
    long long cum = 0;
    for (const auto& [v, wv] : pairs) {
      const long long lo = std::max(cum, static_cast<long long>(f));
      const long long hi = std::min(cum + static_cast<long long>(wv),
                                    static_cast<long long>(n - f));
      if (hi > lo) sum += v * static_cast<double>(hi - lo);
      cum += static_cast<long long>(wv);
    }
    result[static_cast<std::size_t>(k)] = sum * inv;
  }
}

/// Replicated CWMED: per-coordinate weighted median.
void weighted_cwmed(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                    AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  resize_output(out, d);
  auto result = out.coefficients();
  auto& pairs = ws.coreset_pairs;
  for (int k = 0; k < d; ++k) {
    pairs.clear();
    for (int i = 0; i < m; ++i) {
      pairs.emplace_back(cs.row(i)[static_cast<std::size_t>(k)],
                         w[static_cast<std::size_t>(i)]);
    }
    result[static_cast<std::size_t>(k)] = weighted_median(pairs, n);
  }
}

/// Replicated Krum scores into ws.scores: row i's replicated copies see
/// w_i - 1 zero distances to each other plus d(i, j) with multiplicity w_j,
/// and sum their n - f - 2 smallest entries.
void weighted_krum_scores(const GradientBatch& cs, const std::vector<double>& w, int n, int f,
                          AggregatorWorkspace& ws) {
  const int m = cs.rows();
  ABFT_REQUIRE(n > 2 * f + 2, "krum needs n > 2f + 2");
  ws.fill_pairwise_sqdist(cs);
  const long long neighbors = n - f - 2;
  ws.scores.resize(static_cast<std::size_t>(m));
  ws.pairrow.resize(static_cast<std::size_t>(m));
  auto& pairs = ws.coreset_pairs;
  for (int i = 0; i < m; ++i) {
    // The w_i - 1 own-copy distances are zero, hence always the smallest.
    long long rem = neighbors - (static_cast<long long>(w[static_cast<std::size_t>(i)]) - 1);
    double score = 0.0;
    if (rem > 0) {
      pairs.clear();
      ws.gather_pair_row(i, m, ws.pairrow.data());
      const double* row = ws.pairrow.data();
      for (int j = 0; j < m; ++j) {
        if (j != i) pairs.emplace_back(row[j], w[static_cast<std::size_t>(j)]);
      }
      std::sort(pairs.begin(), pairs.end());
      for (const auto& [dv, wv] : pairs) {
        const long long take = std::min(rem, static_cast<long long>(wv));
        score += dv * static_cast<double>(take);
        rem -= take;
        if (rem == 0) break;
      }
    }
    ws.scores[static_cast<std::size_t>(i)] = score;
  }
}

void weighted_krum(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                   int f, AggregatorWorkspace& ws) {
  weighted_krum_scores(cs, w, n, f, ws);
  const int m = cs.rows();
  const auto best = static_cast<int>(
      std::min_element(ws.scores.begin(), ws.scores.begin() + m) - ws.scores.begin());
  resize_output(out, cs.cols());
  const auto row = cs.row(best);
  std::copy(row.begin(), row.end(), out.coefficients().begin());
}

/// Replicated Multi-Krum (canonical m = n - f): mean of the n - f
/// lowest-score replicated rows, score ties kept in slot order.
void weighted_multikrum(Vector& out, const GradientBatch& cs, const std::vector<double>& w,
                        int n, int f, AggregatorWorkspace& ws) {
  weighted_krum_scores(cs, w, n, f, ws);
  const int m = cs.rows();
  const int d = cs.cols();
  ws.order.resize(static_cast<std::size_t>(m));
  std::iota(ws.order.begin(), ws.order.end(), 0);
  std::stable_sort(ws.order.begin(), ws.order.end(), [&ws](int a, int b) {
    return ws.scores[static_cast<std::size_t>(a)] < ws.scores[static_cast<std::size_t>(b)];
  });
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  const long long msel = n - f;
  long long budget = msel;
  for (int s = 0; s < m && budget > 0; ++s) {
    const int i = ws.order[static_cast<std::size_t>(s)];
    const long long take =
        std::min(budget, static_cast<long long>(w[static_cast<std::size_t>(i)]));
    const double* row = cs.row(i).data();
    const double tw = static_cast<double>(take);
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += tw * row[k];
    budget -= take;
  }
  const double inv = 1.0 / static_cast<double>(msel);
  for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] *= inv;
}

/// Weighted damped Weiszfeld: same init (replicated mean), damping floor,
/// tolerance and iteration schedule as geometric_median_into.
void weighted_geomed(Vector& out, const GradientBatch& cs, const std::vector<double>& w,
                     int n, AggregatorWorkspace& ws, double tolerance = 1e-10,
                     int max_iterations = 200) {
  const int m = cs.rows();
  const int d = cs.cols();
  weighted_average(out, cs, w, n);
  auto cur = out.coefficients();
  double sq = 0.0;
  for (int k = 0; k < d; ++k) sq += cur[static_cast<std::size_t>(k)] * cur[static_cast<std::size_t>(k)];
  const double scale = std::max(1.0, std::sqrt(sq));
  const double floor = 1e-12 * scale;
  ws.vecbuf.resize(static_cast<std::size_t>(d));
  double* num = ws.vecbuf.data();
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::fill(num, num + d, 0.0);
    double denominator = 0.0;
    for (int i = 0; i < m; ++i) {
      const double* row = cs.row(i).data();
      const double dist = std::max(std::sqrt(sqdist_rows(cur.data(), row, d)), floor);
      const double wq = w[static_cast<std::size_t>(i)] / dist;
      for (int k = 0; k < d; ++k) num[k] += wq * row[k];
      denominator += wq;
    }
    const double inv = 1.0 / denominator;
    double moved_sq = 0.0;
    for (int k = 0; k < d; ++k) {
      const double next_k = num[k] * inv;
      const double diff = next_k - cur[static_cast<std::size_t>(k)];
      moved_sq += diff * diff;
      cur[static_cast<std::size_t>(k)] = next_k;
    }
    if (std::sqrt(moved_sq) <= tolerance * scale) break;
  }
}

/// Replicated GMoM with the registry's default bucket policy
/// (min(n, 2f + 1) contiguous near-equal buckets over the replicated
/// layout): a two-pointer walk distributes each slot's multiplicity over
/// the bucket boundaries, the weighted bucket means land in ws.aux_batch,
/// and the batched Weiszfeld runs over them — O(m d + k_buckets d), never
/// the O(n d) replicated batch.
void weighted_gmom(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                   int f, AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  const int k = std::min(n, 2 * f + 1);
  ws.aux_batch.reshape(k, d);
  int slot = 0;
  long long used = 0;  // copies of `slot` consumed by earlier buckets
  long long start = 0;
  for (int b = 0; b < k; ++b) {
    const long long size = (n - start) / static_cast<long long>(k - b);
    auto mean_row = ws.aux_batch.row(b);
    std::fill(mean_row.begin(), mean_row.end(), 0.0);
    long long rem = size;
    while (rem > 0 && slot < m) {
      const long long take =
          std::min(rem, static_cast<long long>(w[static_cast<std::size_t>(slot)]) - used);
      const double* row = cs.row(slot).data();
      const double tw = static_cast<double>(take);
      for (int kk = 0; kk < d; ++kk) mean_row[static_cast<std::size_t>(kk)] += tw * row[kk];
      used += take;
      rem -= take;
      if (used == static_cast<long long>(w[static_cast<std::size_t>(slot)])) {
        ++slot;
        used = 0;
      }
    }
    const double inv = 1.0 / static_cast<double>(size);
    for (int kk = 0; kk < d; ++kk) mean_row[static_cast<std::size_t>(kk)] *= inv;
    start += size;
  }
  geometric_median_into(out, ws.aux_batch, ws);
}

/// Replicated Bulyan, simulated at slot granularity.  All copies of a slot
/// are identical rows, so within-slot distances are exactly zero and every
/// copy shares its slot's Krum score; the exact path's per-round argmin
/// (strict <, lowest replicated index, slots laid out contiguously) always
/// removes a copy of the lowest-indexed minimal-score slot, which is what
/// the ascending-slot scan picks.  Stage 1 runs theta = n - 2f rounds over
/// at most m active slots with once-presorted neighbour lists — worst case
/// O(theta m^2) time and O(m^2) memory, so bulyan's reduction pays off only
/// while m stays small relative to n; it never touches O(n d).  Stage 2 is
/// the weighted form of the exact trimmed average: per coordinate, the
/// weighted median of the theta selected copies, then a two-pointer window
/// of the beta closest copies (preferring the low side on distance ties,
/// like the exact sweep).
void weighted_bulyan(Vector& out, const GradientBatch& cs, const std::vector<double>& w,
                     int n, int f, AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  ABFT_REQUIRE(n >= 4 * f + 3, "bulyan needs n >= 4f + 3");
  const int theta = n - 2 * f;
  const int beta = theta - 2 * f;

  // Stage 1: iterated Krum over the replicated multiset.
  ws.fill_pairwise_sqdist(cs);
  const auto mm = static_cast<std::size_t>(m) * static_cast<std::size_t>(m);
  ws.sorted_ids.resize(mm);
  ws.pairrow.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(m);
    int* ids = ws.sorted_ids.data() + base;
    ws.gather_pair_row(i, m, ws.pairrow.data());
    const double* dist = ws.pairrow.data();
    int cnt = 0;
    for (int j = 0; j < m; ++j) {
      if (j != i) ids[cnt++] = j;
    }
    std::sort(ids, ids + cnt, [dist](int a, int b) {
      return dist[a] < dist[b] || (dist[a] == dist[b] && a < b);
    });
  }
  ws.scratch.resize(static_cast<std::size_t>(m));  // active copies per slot
  ws.counts.resize(static_cast<std::size_t>(m));   // selected copies per slot
  for (int i = 0; i < m; ++i) {
    ws.scratch[static_cast<std::size_t>(i)] = w[static_cast<std::size_t>(i)];
    ws.counts[static_cast<std::size_t>(i)] = 0;
  }
  int pool = n;
  for (int round = 0; round < theta; ++round) {
    // The span path's relaxed_scores rejects a pool of fewer than two
    // gradients (which f = 0 reaches on the final round); mirror it.
    ABFT_REQUIRE(pool >= 2, "relaxed krum scores need at least two gradients");
    const long long neighbors = std::max(1LL, static_cast<long long>(pool) - f - 2);
    int best = -1;
    double best_score = 0.0;
    for (int i = 0; i < m; ++i) {
      const auto ai = static_cast<long long>(ws.scratch[static_cast<std::size_t>(i)]);
      if (ai <= 0) continue;
      long long rem = neighbors - (ai - 1);  // own copies sit at distance 0
      double score = 0.0;
      if (rem > 0) {
        const std::size_t base = static_cast<std::size_t>(i) * static_cast<std::size_t>(m);
        const int* ids = ws.sorted_ids.data() + base;
        for (int s = 0; s < m - 1 && rem > 0; ++s) {
          const int j = ids[s];
          const auto aj = static_cast<long long>(ws.scratch[static_cast<std::size_t>(j)]);
          if (aj <= 0) continue;
          const long long take = std::min(rem, aj);
          score += ws.pair_sqdist(i, j, m) * static_cast<double>(take);
          rem -= take;
        }
      }
      if (best < 0 || score < best_score) {
        best = i;
        best_score = score;
      }
    }
    ws.scratch[static_cast<std::size_t>(best)] -= 1.0;
    ws.counts[static_cast<std::size_t>(best)] += 1;
    --pool;
  }

  // Stage 2: per coordinate, average the beta selected copies closest to
  // the selected weighted median.
  const int take_total = std::min(beta, theta);
  resize_output(out, d);
  auto result = out.coefficients();
  auto& pairs = ws.coreset_pairs;
  for (int kk = 0; kk < d; ++kk) {
    pairs.clear();
    for (int i = 0; i < m; ++i) {
      const int sel = ws.counts[static_cast<std::size_t>(i)];
      if (sel > 0) {
        pairs.emplace_back(cs.row(i)[static_cast<std::size_t>(kk)],
                           static_cast<double>(sel));
      }
    }
    std::sort(pairs.begin(), pairs.end());
    const long long half = theta / 2;
    const double hi_v = value_at_rank(pairs, half);
    const double med =
        (theta % 2 == 1) ? hi_v : 0.5 * (value_at_rank(pairs, half - 1) + hi_v);
    // Locate the pair holding replicated rank theta/2 (the window's first
    // high-side element, mirroring the exact sweep's hi = theta/2 start).
    std::size_t sp = 0;
    long long cum = 0;
    while (cum + static_cast<long long>(pairs[sp].second) <= half) {
      cum += static_cast<long long>(pairs[sp].second);
      ++sp;
    }
    auto lp = static_cast<std::ptrdiff_t>(sp);
    long long lo_avail = half - cum;  // copies of pairs[sp] below the split
    if (lo_avail == 0) {
      --lp;
      lo_avail = lp >= 0 ? static_cast<long long>(pairs[static_cast<std::size_t>(lp)].second)
                         : 0;
    }
    std::size_t hp = sp;
    long long hi_avail = static_cast<long long>(pairs[sp].second) - (half - cum);
    double sum = 0.0;
    long long picked = 0;
    while (picked < take_total) {
      bool use_lo;
      if (lp < 0) {
        use_lo = false;
      } else if (hp >= pairs.size()) {
        use_lo = true;
      } else {
        use_lo = med - pairs[static_cast<std::size_t>(lp)].first <= pairs[hp].first - med;
      }
      if (use_lo) {
        const long long c = std::min(lo_avail, take_total - picked);
        sum += pairs[static_cast<std::size_t>(lp)].first * static_cast<double>(c);
        picked += c;
        lo_avail -= c;
        if (lo_avail == 0) {
          --lp;
          lo_avail =
              lp >= 0 ? static_cast<long long>(pairs[static_cast<std::size_t>(lp)].second)
                      : 0;
        }
      } else {
        const long long c = std::min(hi_avail, take_total - picked);
        sum += pairs[hp].first * static_cast<double>(c);
        picked += c;
        hi_avail -= c;
        if (hi_avail == 0) {
          ++hp;
          hi_avail = hp < pairs.size() ? static_cast<long long>(pairs[hp].second) : 0;
        }
      }
    }
    result[static_cast<std::size_t>(kk)] = sum / static_cast<double>(take_total);
  }
}

/// Replicated norm clipping: clip threshold is the replicated median norm,
/// clipped rows are averaged with their multiplicities.
void weighted_normclip(Vector& out, const GradientBatch& cs, const std::vector<double>& w,
                       int n, AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  ws.fill_norms(cs);
  auto& pairs = ws.coreset_pairs;
  pairs.clear();
  for (int i = 0; i < m; ++i) {
    pairs.emplace_back(ws.norms[static_cast<std::size_t>(i)], w[static_cast<std::size_t>(i)]);
  }
  const double clip = weighted_median(pairs, n);
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  for (int i = 0; i < m; ++i) {
    const double norm = ws.norms[static_cast<std::size_t>(i)];
    const double wi = w[static_cast<std::size_t>(i)];
    const double s = (norm > clip && norm > 0.0) ? wi * clip / norm : wi;
    const double* row = cs.row(i).data();
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += s * row[k];
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] *= inv;
}

/// Replicated centered clipping with the registry defaults (adaptive tau,
/// 3 iterations): weighted cwmed pivot, weighted median clipping radius,
/// weighted correction averaged over n.
void weighted_cclip(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                    AggregatorWorkspace& ws, int iterations = 3) {
  const int m = cs.rows();
  const int d = cs.cols();
  weighted_cwmed(out, cs, w, n, ws);
  auto pivot = out.coefficients();
  ws.vecbuf.resize(static_cast<std::size_t>(d));
  double* correction = ws.vecbuf.data();
  auto& pairs = ws.coreset_pairs;
  for (int iter = 0; iter < iterations; ++iter) {
    pairs.clear();
    for (int i = 0; i < m; ++i) {
      pairs.emplace_back(std::sqrt(sqdist_rows(cs.row(i).data(), pivot.data(), d)),
                         w[static_cast<std::size_t>(i)]);
    }
    const double tau = weighted_median(pairs, n);
    if (tau <= 0.0) return;  // all replicated gradients equal the pivot
    std::fill(correction, correction + d, 0.0);
    for (int i = 0; i < m; ++i) {
      const double* row = cs.row(i).data();
      const double norm = std::sqrt(sqdist_rows(row, pivot.data(), d));
      const double s = (norm > tau ? tau / norm : 1.0) * w[static_cast<std::size_t>(i)];
      for (int k = 0; k < d; ++k) {
        correction[k] += s * (row[k] - pivot[static_cast<std::size_t>(k)]);
      }
    }
    const double inv = 1.0 / static_cast<double>(n);
    for (int k = 0; k < d; ++k) pivot[static_cast<std::size_t>(k)] += inv * correction[k];
  }
}

// --------------------------- k-center construction ---------------------------

/// Strict total order on (distance, id) candidate pairs: farther first,
/// distance ties to the lower id — exactly the order the serial reference
/// pass uses, so selection is a unique function of the distances.
using DistPair = std::pair<double, int>;
bool pair_farther(const DistPair& a, const DistPair& b) {
  return a.first > b.first || (a.first == b.first && a.second < b.second);
}

/// Row-block width for the blocked distance pass: a multiple of 1024 scaled
/// with the outlier budget so the per-round merge stays at roughly a dozen
/// blocks' worth of candidates (each block queue holds z + 1 entries).  A
/// pure function of (n, z) — never the thread count — so construction is
/// bit-identical at every parallel width.
int kcenter_block_rows(int n, int z) {
  const long long want = 8LL * (static_cast<long long>(z) + 1);
  long long block = std::max(1024LL, (want + 1023) / 1024 * 1024);
  return static_cast<int>(std::min(block, static_cast<long long>(n)));
}

/// Portable column-major squared-distance block: out[i] = d(row_i, center)^2
/// for i in [lo, hi), written as d strided sweeps so the compiler vectorizes
/// ACROSS rows.  This is the construction pass's exact-mode arithmetic: each
/// out[i] still accumulates in ascending-k order — the same sequential sum a
/// scalar row loop produces — so the values are independent of the vector
/// width and the thread count.  The caller blocks [lo, hi) small enough that
/// out stays cache-resident across the k sweeps.
void colmajor_sqdist_block(const double* cols, std::size_t stride, const double* center,
                           int d, int lo, int hi, double* out) {
  const double c0 = center[0];
  for (int i = lo; i < hi; ++i) {
    const double diff = cols[i] - c0;
    out[i] = diff * diff;
  }
  for (int k = 1; k < d; ++k) {
    const double* col = cols + static_cast<std::size_t>(k) * stride;
    const double ck = center[k];
    for (int i = lo; i < hi; ++i) {
      const double diff = col[i] - ck;
      out[i] += diff * diff;
    }
  }
}

/// One block's distance pass for a freshly placed center, in 1024-row
/// sub-chunks: the column-major distance kernel fills cand[c_lo, c_hi)
/// (L1-resident across the d column sweeps), then a branchless blend folds
/// it into the nearest-center state.  Centers (dist -1) and exact
/// duplicates (dist 0) keep their slot: a squared distance is never
/// negative, so the blend cannot overwrite them.  Writes only this block's
/// dist/assign/cand rows; the per-block queues are left alone — selection
/// refreshes them lazily (see kcenter_refill_block).
template <typename T, typename Dist>
void kcenter_block_pass(double* dist, int* assign, const T* cols, std::size_t stride,
                        const T* center_row, int d, int slot, int lo, int hi,
                        double* cand, Dist dist_block) {
  for (int c_lo = lo; c_lo < hi; c_lo += 1024) {
    const int c_hi = std::min(hi, c_lo + 1024);
    dist_block(cols, stride, center_row, d, c_lo, c_hi, cand);
    double* __restrict dd = dist;
    int* __restrict aa = assign;
    const double* __restrict cc = cand;
    for (int i = c_lo; i < c_hi; ++i) {
      const double dsq = cc[i];
      const double di = dd[i];
      const bool closer = dsq < di;
      dd[i] = closer ? dsq : di;
      aa[i] = closer ? slot : aa[i];
    }
  }
}

/// Rebuilds one block's bounded top-(z + 1) farthest-point queue from the
/// live distances and records its epoch bound: the least-far kept entry (as
/// a (distance, id) pair) at refill time, or -inf when the whole block fits
/// in the queue.  Every row the refill excludes is strictly less far than
/// the bound under the total order, and distances only decrease between
/// refills, so excluded rows stay excluded-safe until the global selection
/// threshold crosses the bound — which is exactly when selection marks the
/// block for another refill.  Reads only frozen distances and writes only
/// the block's own queue/count/bound: deterministic at any parallel width.
void kcenter_refill_block(const double* dist, int n, int block, int qcap, int b, int* queues,
                          int* counts, DistPair* qbound) {
  const int lo = b * block;
  const int hi = std::min(n, lo + block);
  const int need = std::min(qcap, hi - lo);
  int* queue = queues + static_cast<std::size_t>(b) * static_cast<std::size_t>(qcap);
  const auto farther = [dist](int a, int b2) {
    const double da = dist[a];
    const double db = dist[b2];
    return da > db || (da == db && a < b2);
  };
  int count = 0;
  // The queue front (least far of the kept top-(z + 1)) is cached so the
  // common reject path costs one compare.
  double front_dist = 0.0;
  int front_id = 0;
  for (int i = lo; i < hi; ++i) {
    const double di = dist[i];
    if (count < need) {
      queue[count++] = i;
      std::push_heap(queue, queue + count, farther);
      front_id = queue[0];
      front_dist = dist[front_id];
    } else if (di > front_dist || (di == front_dist && i < front_id)) {
      std::pop_heap(queue, queue + count, farther);
      queue[count - 1] = i;
      std::push_heap(queue, queue + count, farther);
      front_id = queue[0];
      front_dist = dist[front_id];
    }
  }
  counts[b] = count;
  qbound[b] = hi - lo <= qcap
                  ? DistPair{-std::numeric_limits<double>::infinity(),
                             std::numeric_limits<int>::max()}
                  : DistPair{front_dist, front_id};
}

/// Greedy k-center with outliers, blocked and deterministically parallel.
/// Selection semantics match the original serial pass: the next center is
/// the global (z + 1)-th farthest row under the strict total order
/// (distance desc, ties to the lower id).  Each block keeps a bounded
/// top-(z + 1) farthest-point queue that is refreshed lazily: a queue built
/// in an earlier round stays valid as long as the global threshold sits at
/// or above the block's epoch bound, because the rows it excluded were less
/// far than the bound then and distances only decrease.  Per round the live
/// (distance, id) pairs of all queue members — including members that
/// degraded or became centers, which remain correct candidates — merge in
/// block order, nth_element finds the candidate threshold, and any block
/// whose epoch bound is farther than that threshold (its exclusions could
/// hide above it) is refilled; iterating to a fixpoint provably recovers
/// the exact global top-(z + 1).  Termination: a refilled block's new bound
/// is its local (z + 1)-th, which cannot exceed the global one, so each
/// block refills at most once per round.  With `adaptive`, growth stops at
/// the first power-of-two checkpoint (k = f + 1, 2(f + 1), ...) where the
/// covering radius failed to improve by the fixed factor 0.7 since the
/// previous one.
template <typename T, typename Dist>
int kcenter_reduce(const GradientBatch& batch, int f, AggregatorWorkspace& ws, int k_cap,
                   bool adaptive, Dist dist_block) {
  constexpr bool kF32 = std::is_same_v<T, float>;
  const int n = batch.rows();
  const int d = batch.cols();
  const int z = f;

  // The distance passes run on the workspace transpose (one column per
  // coordinate), so the hot kernel vectorizes across rows.  The median pivot
  // is taken on a per-column copy in ws.scratch — median_inplace reorders
  // its input, and the transpose must survive for the passes below.  The f32
  // lane transposes the demoted rows instead (half the streaming traffic for
  // every pass below); the pivot medians and all selection state stay f64.
  if constexpr (kF32) {
    ws.fill_colmajor_f32(batch);  // also fills ws.rows_f32 (center rows below)
  } else {
    ws.fill_colmajor(batch);
  }
  ws.scratch.resize(static_cast<std::size_t>(n));
  ws.coreset_vec.resize(static_cast<std::size_t>(d));
  const T* tcols = nullptr;
  if constexpr (kF32) {
    tcols = ws.colmajor_f32.data();
  } else {
    tcols = ws.colmajor.data();
  }
  for (int kk = 0; kk < d; ++kk) {
    const T* col = tcols + static_cast<std::size_t>(kk) * static_cast<std::size_t>(n);
    for (int i = 0; i < n; ++i) ws.scratch[static_cast<std::size_t>(i)] = static_cast<double>(col[i]);
    ws.coreset_vec[static_cast<std::size_t>(kk)] =
        median_inplace(ws.scratch.data(), ws.scratch.data() + n);
  }
  // Seed center: the row nearest the coordinate-wise median pivot (a robust
  // pivot an adversary cannot drag far with f rows).  The f32 lane measures
  // this nearest-row pass on the demoted rows (strict < keeps the first
  // minimum, so the pick is deterministic either way).
  int seed = 0;
  double best = std::numeric_limits<double>::infinity();
  if constexpr (kF32) {
    ws.vecbuf_f32.resize(static_cast<std::size_t>(d));
    for (int kk = 0; kk < d; ++kk) {
      ws.vecbuf_f32[static_cast<std::size_t>(kk)] =
          static_cast<float>(ws.coreset_vec[static_cast<std::size_t>(kk)]);
    }
    for (int i = 0; i < n; ++i) {
      const float* row =
          ws.rows_f32.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
      const double dsq = detail::laned_sqdist_f32(row, ws.vecbuf_f32.data(), d);
      if (dsq < best) {
        best = dsq;
        seed = i;
      }
    }
  } else {
    for (int i = 0; i < n; ++i) {
      const double dsq = sqdist_rows(batch.row(i).data(), ws.coreset_vec.data(), d);
      if (dsq < best) {
        best = dsq;
        seed = i;
      }
    }
  }

  // dist[i] tracks the squared distance to the nearest selected center; -1
  // marks a selected center (sorts "nearest", so it can never be reselected
  // while z + 1 non-centers remain, which would_reduce guarantees).
  ws.coreset_dist.assign(static_cast<std::size_t>(n),
                         std::numeric_limits<double>::infinity());
  ws.coreset_assign.assign(static_cast<std::size_t>(n), 0);
  ws.coreset_ids.clear();
  ws.coreset_ids.push_back(seed);
  ws.coreset_dist[static_cast<std::size_t>(seed)] = -1.0;

  const int block = kcenter_block_rows(n, z);
  const int nblocks = (n + block - 1) / block;
  const int qcap = std::min(z + 1, block);
  ws.coreset_cand.resize(static_cast<std::size_t>(nblocks) * static_cast<std::size_t>(qcap));
  ws.coreset_cand_count.assign(static_cast<std::size_t>(nblocks), -1);  // bootstrap refill
  ws.coreset_qbound.resize(static_cast<std::size_t>(nblocks));
  auto& merged = ws.coreset_merged;
  double* dist = ws.coreset_dist.data();
  int* assign = ws.coreset_assign.data();
  int* queues = ws.coreset_cand.data();
  int* counts = ws.coreset_cand_count.data();
  DistPair* qbound = ws.coreset_qbound.data();

  int next_checkpoint = adaptive ? f + 1 : 0;
  double prev_radius2 = -1.0;
  double prev_tau = -1.0;  // last round's selection threshold, pivot below
  int pending = seed;  // last placed center, its distance pass still due
  int centers = 1;
  const T* cols = tcols;
  const auto stride = static_cast<std::size_t>(n);
  double* cand = ws.scratch.data();
  for (;;) {
    const int slot = centers - 1;  // pending's slot
    const T* center_row = nullptr;
    if constexpr (kF32) {
      center_row =
          ws.rows_f32.data() + static_cast<std::size_t>(pending) * static_cast<std::size_t>(d);
    } else {
      center_row = batch.row(pending).data();
    }

    ws.run_parallel(0, nblocks, [&](int b_begin, int b_end) {
      for (int b = b_begin; b < b_end; ++b) {
        const int lo = b * block;
        const int hi = std::min(n, lo + block);
        kcenter_block_pass(dist, assign, cols, stride, center_row, d, slot, lo, hi, cand,
                           dist_block);
      }
    });

    // Selection fixpoint: refill the queues marked stale (all of them on the
    // bootstrap round), merge every queue's live pairs in block order, take
    // the candidate (z + 1)-th, then mark any block whose epoch bound is
    // farther than the candidate threshold and go again.  Refills read only
    // the frozen distances, so the parallel dispatch cannot change them.
    DistPair tau{0.0, 0};
    for (;;) {
      bool stale = false;
      for (int b = 0; b < nblocks; ++b) stale = stale || counts[b] < 0;
      if (stale) {
        ws.run_parallel(0, nblocks, [&](int b_begin, int b_end) {
          for (int b = b_begin; b < b_end; ++b) {
            if (counts[b] < 0) {
              kcenter_refill_block(dist, n, block, qcap, b, queues, counts, qbound);
            }
          }
        });
      }
      merged.clear();
      for (int b = 0; b < nblocks; ++b) {
        const int* q = queues + static_cast<std::size_t>(b) * static_cast<std::size_t>(qcap);
        for (int c = 0; c < counts[b]; ++c) merged.emplace_back(dist[q[c]], q[c]);
      }
      // Decayed prev-threshold pivot: the threshold shrinks slowly per
      // round, so partitioning by ~99.5% of last round's tau keeps the true
      // top-(z + 1) inside a short prefix whenever the prefix holds more
      // than z pairs (every prefix pair outranks every suffix pair under
      // the total order); otherwise fall back to the full range.
      auto nth_end = merged.end();
      if (prev_tau >= 0.0) {
        const DistPair pivot{prev_tau * 0.995, std::numeric_limits<int>::max()};
        const auto mid = std::partition(
            merged.begin(), merged.end(),
            [&pivot](const DistPair& p) { return pair_farther(p, pivot); });
        if (mid - merged.begin() > z) nth_end = mid;
      }
      std::nth_element(merged.begin(), merged.begin() + z, nth_end, pair_farther);
      tau = merged[static_cast<std::size_t>(z)];
      bool again = false;
      for (int b = 0; b < nblocks; ++b) {
        if (pair_farther(qbound[b], tau)) {
          counts[b] = -1;
          again = true;
        }
      }
      if (!again) break;
    }
    prev_tau = tau.first;

    if (centers >= k_cap) break;
    const int next = tau.second;
    const double radius2 = tau.first;
    if (radius2 <= 0.0) break;  // only duplicates left
    if (adaptive && centers >= next_checkpoint) {
      if (prev_radius2 >= 0.0 && radius2 > 0.49 * prev_radius2) break;
      prev_radius2 = radius2;
      next_checkpoint *= 2;
    }
    ws.coreset_ids.push_back(next);
    dist[next] = -1.0;
    ws.coreset_assign[static_cast<std::size_t>(next)] = centers;
    pending = next;
    ++centers;
  }

  // Outlier budget: the z farthest non-center rows (already the merge's
  // top z under the final distances) ride along verbatim as weight-1
  // singletons (ascending row id for a stable layout), so up to z = f
  // attack rows cannot fold into any center's weight.
  if (z > 0) {
    ws.order.resize(static_cast<std::size_t>(z));
    for (int o = 0; o < z; ++o) ws.order[static_cast<std::size_t>(o)] = merged[static_cast<std::size_t>(o)].second;
    std::sort(ws.order.begin(), ws.order.begin() + z);
    for (int o = 0; o < z; ++o) {
      const int id = ws.order[static_cast<std::size_t>(o)];
      ws.coreset_ids.push_back(id);
      ws.coreset_assign[static_cast<std::size_t>(id)] = centers + o;
    }
  }
  const int m = centers + z;

  // Every row contributes exactly one unit to its slot, so the integer
  // multiplicity weights sum to n by construction.
  ws.coreset_weights.assign(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < n; ++i) {
    ws.coreset_weights[static_cast<std::size_t>(ws.coreset_assign[static_cast<std::size_t>(i)])] +=
        1.0;
  }
  ws.coreset_batch.reshape(m, d);
  for (int s = 0; s < m; ++s) {
    ws.coreset_batch.set_row(s, batch.row(ws.coreset_ids[static_cast<std::size_t>(s)]));
  }
  return m;
}

// ---------------------------- sample construction ----------------------------

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Cell-representative stream: a fixed constant, not a spec seed — the
/// sample positions are a pure function of (n, f, config), so repeated
/// reductions of the same batch are bit-identical (the values a cell
/// represents still come from the data's norm order).
constexpr std::uint64_t kSampleStream = 0x5eed5a3c0de5a17bULL;

/// Norm-stratified weighted sampling: rank rows by (norm, id), carry the z
/// largest-norm rows as weight-1 singletons, cut the remaining body into
/// near-equal-count norm bands and each band into near-equal rank cells,
/// and let one deterministic pseudo-random representative per cell carry
/// the cell count as its weight.  O(n d) norms + one O(n log n) sort; the
/// full sort (rather than nth_element band splits) keeps cell contents a
/// specified, portable function of the data.
int sample_reduce(const GradientBatch& batch, int f, AggregatorWorkspace& ws, int k,
                  int strata) {
  const int n = batch.rows();
  const int d = batch.cols();
  const int z = f;
  ws.fill_norms(batch);
  ws.order.resize(static_cast<std::size_t>(n));
  std::iota(ws.order.begin(), ws.order.end(), 0);
  std::sort(ws.order.begin(), ws.order.end(), [&ws](int a, int b) {
    const double na = ws.norms[static_cast<std::size_t>(a)];
    const double nb = ws.norms[static_cast<std::size_t>(b)];
    return na < nb || (na == nb && a < b);
  });

  const int nbody = n - z;  // k < nbody by would_reduce
  const int eff = std::max(1, std::min(strata > 0 ? strata : 8, k));
  ws.coreset_ids.clear();
  ws.coreset_weights.clear();
  long long start = 0;  // rank offset into the body
  int assigned = 0;
  for (int b = 0; b < eff; ++b) {
    const long long count_b = (nbody - start) / static_cast<long long>(eff - b);
    const int alloc_b = (k - assigned) / (eff - b);
    for (int c = 0; c < alloc_b; ++c) {
      const long long cell_lo = start + count_b * c / alloc_b;
      const long long cell_hi = start + count_b * (c + 1) / alloc_b;
      const long long cell_size = cell_hi - cell_lo;
      const std::uint64_t h =
          splitmix64(kSampleStream ^ (static_cast<std::uint64_t>(b) << 32) ^
                     static_cast<std::uint64_t>(c));
      const long long pick =
          cell_lo + static_cast<long long>(h % static_cast<std::uint64_t>(cell_size));
      ws.coreset_ids.push_back(ws.order[static_cast<std::size_t>(pick)]);
      ws.coreset_weights.push_back(static_cast<double>(cell_size));
    }
    start += count_b;
    assigned += alloc_b;
  }

  // The z largest-norm rows are the outlier budget: weight-1 singletons in
  // ascending row id, the same stable layout as the k-center reducer.
  if (z > 0) {
    const auto first = ws.order.begin() + nbody;
    std::sort(first, ws.order.end());
    for (auto it = first; it != ws.order.end(); ++it) {
      ws.coreset_ids.push_back(*it);
      ws.coreset_weights.push_back(1.0);
    }
  }

  const int m = k + z;
  ws.coreset_batch.reshape(m, d);
  for (int s = 0; s < m; ++s) {
    ws.coreset_batch.set_row(s, batch.row(ws.coreset_ids[static_cast<std::size_t>(s)]));
  }
  return m;
}

}  // namespace

std::string coreset_label(const CoresetConfig& config, std::string_view rule) {
  std::string label = config.kind == CoresetConfig::Kind::sample ? "sample-" : "coreset-";
  if (config.size == CoresetConfig::kAdaptiveSize) {
    label += "adaptive";
  } else {
    label += config.size > 0 ? std::to_string(config.size) : "auto";
  }
  label += "-";
  label += rule;
  return label;
}

CoresetReducer::CoresetReducer(std::string_view rule, CoresetConfig config)
    : config_(config),
      rule_(rule),
      inner_(make_aggregator(rule)),
      label_(coreset_label(config, rule)),
      kind_(kind_for(rule)) {
  if (config_.kind == CoresetConfig::Kind::sample) {
    ABFT_REQUIRE(config_.size >= 0,
                 "sample: size must be >= 1, or 0 for auto (adaptive is k-center only)");
    ABFT_REQUIRE(config_.strata >= 0, "sample: strata must be >= 1, or 0 for auto");
  } else {
    ABFT_REQUIRE(config_.size >= 0 || config_.size == CoresetConfig::kAdaptiveSize,
                 "coreset: size must be >= 1, 0 for auto, or adaptive");
    ABFT_REQUIRE(config_.strata == 0, "coreset: strata applies to the sample kind only");
  }
}

int CoresetReducer::centers_for(int n, int f) const noexcept {
  if (config_.size == CoresetConfig::kAdaptiveSize) return std::max(0, n - f - 1);
  if (config_.size > 0) return config_.size;
  return f + static_cast<int>(std::ceil(std::sqrt(static_cast<double>(std::max(n, 0)))));
}

bool CoresetReducer::would_reduce(int n, int f) const noexcept {
  if (n <= 0 || f < 0) return false;
  if (config_.size == CoresetConfig::kAdaptiveSize) {
    // The adaptive floor k = f + 1 must fit: (f + 1) + f < n.
    return 2LL * f + 1 < static_cast<long long>(n);
  }
  const long long k = centers_for(n, f);
  return k + static_cast<long long>(f) < static_cast<long long>(n);
}

int CoresetReducer::max_usable_f(int n) const noexcept { return inner_->max_usable_f(n); }

int CoresetReducer::min_usable_f() const noexcept { return inner_->min_usable_f(); }

int CoresetReducer::reduce(const GradientBatch& batch, int f, AggregatorWorkspace& ws) const {
  validate_batch(batch, f);
  const int n = batch.rows();
  ABFT_REQUIRE(would_reduce(n, f),
               "coreset: (n, f) shape does not reduce — delegate to the inner rule");
  if (config_.kind == CoresetConfig::Kind::sample) {
    return sample_reduce(batch, f, ws, centers_for(n, f), config_.strata);
  }
  const bool adaptive = config_.size == CoresetConfig::kAdaptiveSize;
  const int k_cap = centers_for(n, f);
  if (ws.f32_lane()) {
    // f32 construction lane: the blocked distance passes stream demoted
    // columns (half the memory traffic of the f64 transpose); every
    // per-row distance is still emitted as a double, and the selection
    // state, thresholds and tie-breaking run unchanged on doubles — so the
    // construction stays bit-identical at every thread count.
#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
    if (detail::sqdist_avx512_available()) {
      return kcenter_reduce<float>(batch, f, ws, k_cap, adaptive,
                                   [](const float* cols, std::size_t stride,
                                      const float* center, int dd, int lo, int hi,
                                      double* out) {
                                     detail::avx512_colmajor_sqdist_f32(
                                         cols, stride, center, dd, lo, hi, out);
                                   });
    }
#endif
    return kcenter_reduce<float>(batch, f, ws, k_cap, adaptive,
                                 [](const float* cols, std::size_t stride,
                                    const float* center, int dd, int lo, int hi,
                                    double* out) {
                                   detail::laned_colmajor_sqdist_f32(cols, stride, center,
                                                                     dd, lo, hi, out);
                                 });
  }
#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
  if (ws.mode == AggMode::fast && detail::sqdist_avx512_available()) {
    return kcenter_reduce<double>(batch, f, ws, k_cap, adaptive,
                                  [](const double* cols, std::size_t stride,
                                     const double* center, int dd, int lo, int hi,
                                     double* out) {
                                    detail::avx512_colmajor_sqdist(cols, stride, center,
                                                                   dd, lo, hi, out);
                                  });
  }
#endif
  return kcenter_reduce<double>(batch, f, ws, k_cap, adaptive,
                                [](const double* cols, std::size_t stride,
                                   const double* center, int dd, int lo, int hi,
                                   double* out) {
                                  colmajor_sqdist_block(cols, stride, center, dd, lo, hi,
                                                        out);
                                });
}

Vector CoresetReducer::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  GradientBatch batch;
  batch.pack(gradients);
  AggregatorWorkspace workspace;
  Vector out;
  aggregate_into(out, batch, f, workspace);
  return out;
}

void CoresetReducer::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                    AggregatorWorkspace& ws) const {
  validate_batch(batch, f);
  const int n = batch.rows();
  if (!would_reduce(n, f)) {
    // Reduction cannot shrink this shape: run the inner rule on the original
    // batch, bit-identical to flat aggregation.
    inner_->aggregate_into(out, batch, f, ws);
    return;
  }
  reduce(batch, f, ws);
  const GradientBatch& cs = ws.coreset_batch;
  const std::vector<double>& w = ws.coreset_weights;
  switch (kind_) {
    case kAverage:
      weighted_average(out, cs, w, n);
      return;
    case kCge:
      weighted_cge(out, cs, w, n, f, ws);
      return;
    case kCwtm:
      weighted_cwtm(out, cs, w, n, f, ws);
      return;
    case kCwmed:
      weighted_cwmed(out, cs, w, n, ws);
      return;
    case kKrum:
      weighted_krum(out, cs, w, n, f, ws);
      return;
    case kMultiKrum:
      weighted_multikrum(out, cs, w, n, f, ws);
      return;
    case kGeomed:
      weighted_geomed(out, cs, w, n, ws);
      return;
    case kGmom:
      weighted_gmom(out, cs, w, n, f, ws);
      return;
    case kBulyan:
      weighted_bulyan(out, cs, w, n, f, ws);
      return;
    case kNormclip:
      weighted_normclip(out, cs, w, n, ws);
      return;
    default:
      weighted_cclip(out, cs, w, n, ws);
      return;
  }
}

}  // namespace abft::agg

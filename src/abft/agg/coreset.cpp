#include "abft/agg/coreset.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <utility>

#include "abft/agg/registry.hpp"
#include "abft/util/check.hpp"

namespace abft::agg {

namespace {

// Weighted-kernel dispatch tags.  kReplicate marks the rules whose weighted
// form is not implemented (gmom, bulyan): they run the registry rule on the
// materialized replicated batch — exact, but not sublinear.
enum Kind : int {
  kAverage,
  kCge,
  kCwtm,
  kCwmed,
  kKrum,
  kMultiKrum,
  kGeomed,
  kNormclip,
  kCclip,
  kReplicate,
};

int kind_for(std::string_view rule) {
  if (rule == "average") return kAverage;
  if (rule == "cge") return kCge;
  if (rule == "cwtm") return kCwtm;
  if (rule == "cwmed") return kCwmed;
  if (rule == "krum") return kKrum;
  if (rule == "multikrum") return kMultiKrum;
  if (rule == "geomed") return kGeomed;
  if (rule == "normclip") return kNormclip;
  if (rule == "cclip") return kCclip;
  return kReplicate;
}

double sqdist_rows(const double* a, const double* b, int d) {
  double sum = 0.0;
  for (int k = 0; k < d; ++k) {
    const double diff = a[k] - b[k];
    sum += diff * diff;
  }
  return sum;
}

/// Value at 0-indexed replicated rank r of the multiset {(value, weight)},
/// pairs sorted ascending by value, integer weights.
double value_at_rank(const std::vector<std::pair<double, double>>& pairs, long long r) {
  long long cum = 0;
  for (const auto& [v, w] : pairs) {
    cum += static_cast<long long>(w);
    if (r < cum) return v;
  }
  return pairs.back().first;
}

/// Replicated-multiset median (n odd: middle element; n even: mean of the
/// two middle elements) — the same contract as median_inplace.
double weighted_median(std::vector<std::pair<double, double>>& pairs, long long n) {
  std::sort(pairs.begin(), pairs.end());
  const double hi = value_at_rank(pairs, n / 2);
  if (n % 2 == 1) return hi;
  return 0.5 * (value_at_rank(pairs, n / 2 - 1) + hi);
}

/// out = (sum_i w_i * g_i) / n — the replicated mean.
void weighted_average(Vector& out, const GradientBatch& cs, const std::vector<double>& w,
                      int n) {
  const int m = cs.rows();
  const int d = cs.cols();
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  for (int i = 0; i < m; ++i) {
    const double* row = cs.row(i).data();
    const double wi = w[static_cast<std::size_t>(i)];
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += wi * row[k];
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] *= inv;
}

/// Replicated CGE: sum (not mean) of the n - f smallest-norm replicated
/// rows, ascending-norm order with ties kept in slot order.
void weighted_cge(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                  int f, AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  ws.fill_norms(cs);
  ws.order.resize(static_cast<std::size_t>(m));
  std::iota(ws.order.begin(), ws.order.end(), 0);
  std::stable_sort(ws.order.begin(), ws.order.end(), [&ws](int a, int b) {
    return ws.norms[static_cast<std::size_t>(a)] < ws.norms[static_cast<std::size_t>(b)];
  });
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  long long budget = n - f;
  for (int s = 0; s < m && budget > 0; ++s) {
    const int i = ws.order[static_cast<std::size_t>(s)];
    const long long take =
        std::min(budget, static_cast<long long>(w[static_cast<std::size_t>(i)]));
    const double* row = cs.row(i).data();
    const double tw = static_cast<double>(take);
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += tw * row[k];
    budget -= take;
  }
}

/// Replicated CWTM: per coordinate, the mean of the replicated values whose
/// sorted positions fall in [f, n - f).
void weighted_cwtm(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                   int f, AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  ABFT_REQUIRE(n > 2 * f, "cwtm needs n > 2f");
  resize_output(out, d);
  auto result = out.coefficients();
  const double inv = 1.0 / static_cast<double>(n - 2 * f);
  auto& pairs = ws.coreset_pairs;
  for (int k = 0; k < d; ++k) {
    pairs.clear();
    for (int i = 0; i < m; ++i) {
      pairs.emplace_back(cs.row(i)[static_cast<std::size_t>(k)],
                         w[static_cast<std::size_t>(i)]);
    }
    std::sort(pairs.begin(), pairs.end());
    double sum = 0.0;
    long long cum = 0;
    for (const auto& [v, wv] : pairs) {
      const long long lo = std::max(cum, static_cast<long long>(f));
      const long long hi = std::min(cum + static_cast<long long>(wv),
                                    static_cast<long long>(n - f));
      if (hi > lo) sum += v * static_cast<double>(hi - lo);
      cum += static_cast<long long>(wv);
    }
    result[static_cast<std::size_t>(k)] = sum * inv;
  }
}

/// Replicated CWMED: per-coordinate weighted median.
void weighted_cwmed(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                    AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  resize_output(out, d);
  auto result = out.coefficients();
  auto& pairs = ws.coreset_pairs;
  for (int k = 0; k < d; ++k) {
    pairs.clear();
    for (int i = 0; i < m; ++i) {
      pairs.emplace_back(cs.row(i)[static_cast<std::size_t>(k)],
                         w[static_cast<std::size_t>(i)]);
    }
    result[static_cast<std::size_t>(k)] = weighted_median(pairs, n);
  }
}

/// Replicated Krum scores into ws.scores: row i's replicated copies see
/// w_i - 1 zero distances to each other plus d(i, j) with multiplicity w_j,
/// and sum their n - f - 2 smallest entries.
void weighted_krum_scores(const GradientBatch& cs, const std::vector<double>& w, int n, int f,
                          AggregatorWorkspace& ws) {
  const int m = cs.rows();
  ABFT_REQUIRE(n > 2 * f + 2, "krum needs n > 2f + 2");
  ws.fill_pairwise_sqdist(cs);
  const long long neighbors = n - f - 2;
  ws.scores.resize(static_cast<std::size_t>(m));
  auto& pairs = ws.coreset_pairs;
  for (int i = 0; i < m; ++i) {
    // The w_i - 1 own-copy distances are zero, hence always the smallest.
    long long rem = neighbors - (static_cast<long long>(w[static_cast<std::size_t>(i)]) - 1);
    double score = 0.0;
    if (rem > 0) {
      pairs.clear();
      const double* row =
          ws.pairdist.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(m);
      for (int j = 0; j < m; ++j) {
        if (j != i) pairs.emplace_back(row[j], w[static_cast<std::size_t>(j)]);
      }
      std::sort(pairs.begin(), pairs.end());
      for (const auto& [dv, wv] : pairs) {
        const long long take = std::min(rem, static_cast<long long>(wv));
        score += dv * static_cast<double>(take);
        rem -= take;
        if (rem == 0) break;
      }
    }
    ws.scores[static_cast<std::size_t>(i)] = score;
  }
}

void weighted_krum(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                   int f, AggregatorWorkspace& ws) {
  weighted_krum_scores(cs, w, n, f, ws);
  const int m = cs.rows();
  const auto best = static_cast<int>(
      std::min_element(ws.scores.begin(), ws.scores.begin() + m) - ws.scores.begin());
  resize_output(out, cs.cols());
  const auto row = cs.row(best);
  std::copy(row.begin(), row.end(), out.coefficients().begin());
}

/// Replicated Multi-Krum (canonical m = n - f): mean of the n - f
/// lowest-score replicated rows, score ties kept in slot order.
void weighted_multikrum(Vector& out, const GradientBatch& cs, const std::vector<double>& w,
                        int n, int f, AggregatorWorkspace& ws) {
  weighted_krum_scores(cs, w, n, f, ws);
  const int m = cs.rows();
  const int d = cs.cols();
  ws.order.resize(static_cast<std::size_t>(m));
  std::iota(ws.order.begin(), ws.order.end(), 0);
  std::stable_sort(ws.order.begin(), ws.order.end(), [&ws](int a, int b) {
    return ws.scores[static_cast<std::size_t>(a)] < ws.scores[static_cast<std::size_t>(b)];
  });
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  const long long msel = n - f;
  long long budget = msel;
  for (int s = 0; s < m && budget > 0; ++s) {
    const int i = ws.order[static_cast<std::size_t>(s)];
    const long long take =
        std::min(budget, static_cast<long long>(w[static_cast<std::size_t>(i)]));
    const double* row = cs.row(i).data();
    const double tw = static_cast<double>(take);
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += tw * row[k];
    budget -= take;
  }
  const double inv = 1.0 / static_cast<double>(msel);
  for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] *= inv;
}

/// Weighted damped Weiszfeld: same init (replicated mean), damping floor,
/// tolerance and iteration schedule as geometric_median_into.
void weighted_geomed(Vector& out, const GradientBatch& cs, const std::vector<double>& w,
                     int n, AggregatorWorkspace& ws, double tolerance = 1e-10,
                     int max_iterations = 200) {
  const int m = cs.rows();
  const int d = cs.cols();
  weighted_average(out, cs, w, n);
  auto cur = out.coefficients();
  double sq = 0.0;
  for (int k = 0; k < d; ++k) sq += cur[static_cast<std::size_t>(k)] * cur[static_cast<std::size_t>(k)];
  const double scale = std::max(1.0, std::sqrt(sq));
  const double floor = 1e-12 * scale;
  ws.vecbuf.resize(static_cast<std::size_t>(d));
  double* num = ws.vecbuf.data();
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::fill(num, num + d, 0.0);
    double denominator = 0.0;
    for (int i = 0; i < m; ++i) {
      const double* row = cs.row(i).data();
      const double dist = std::max(std::sqrt(sqdist_rows(cur.data(), row, d)), floor);
      const double wq = w[static_cast<std::size_t>(i)] / dist;
      for (int k = 0; k < d; ++k) num[k] += wq * row[k];
      denominator += wq;
    }
    const double inv = 1.0 / denominator;
    double moved_sq = 0.0;
    for (int k = 0; k < d; ++k) {
      const double next_k = num[k] * inv;
      const double diff = next_k - cur[static_cast<std::size_t>(k)];
      moved_sq += diff * diff;
      cur[static_cast<std::size_t>(k)] = next_k;
    }
    if (std::sqrt(moved_sq) <= tolerance * scale) break;
  }
}

/// Replicated norm clipping: clip threshold is the replicated median norm,
/// clipped rows are averaged with their multiplicities.
void weighted_normclip(Vector& out, const GradientBatch& cs, const std::vector<double>& w,
                       int n, AggregatorWorkspace& ws) {
  const int m = cs.rows();
  const int d = cs.cols();
  ws.fill_norms(cs);
  auto& pairs = ws.coreset_pairs;
  pairs.clear();
  for (int i = 0; i < m; ++i) {
    pairs.emplace_back(ws.norms[static_cast<std::size_t>(i)], w[static_cast<std::size_t>(i)]);
  }
  const double clip = weighted_median(pairs, n);
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  for (int i = 0; i < m; ++i) {
    const double norm = ws.norms[static_cast<std::size_t>(i)];
    const double wi = w[static_cast<std::size_t>(i)];
    const double s = (norm > clip && norm > 0.0) ? wi * clip / norm : wi;
    const double* row = cs.row(i).data();
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += s * row[k];
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] *= inv;
}

/// Replicated centered clipping with the registry defaults (adaptive tau,
/// 3 iterations): weighted cwmed pivot, weighted median clipping radius,
/// weighted correction averaged over n.
void weighted_cclip(Vector& out, const GradientBatch& cs, const std::vector<double>& w, int n,
                    AggregatorWorkspace& ws, int iterations = 3) {
  const int m = cs.rows();
  const int d = cs.cols();
  weighted_cwmed(out, cs, w, n, ws);
  auto pivot = out.coefficients();
  ws.vecbuf.resize(static_cast<std::size_t>(d));
  double* correction = ws.vecbuf.data();
  auto& pairs = ws.coreset_pairs;
  for (int iter = 0; iter < iterations; ++iter) {
    pairs.clear();
    for (int i = 0; i < m; ++i) {
      pairs.emplace_back(std::sqrt(sqdist_rows(cs.row(i).data(), pivot.data(), d)),
                         w[static_cast<std::size_t>(i)]);
    }
    const double tau = weighted_median(pairs, n);
    if (tau <= 0.0) return;  // all replicated gradients equal the pivot
    std::fill(correction, correction + d, 0.0);
    for (int i = 0; i < m; ++i) {
      const double* row = cs.row(i).data();
      const double norm = std::sqrt(sqdist_rows(row, pivot.data(), d));
      const double s = (norm > tau ? tau / norm : 1.0) * w[static_cast<std::size_t>(i)];
      for (int k = 0; k < d; ++k) {
        correction[k] += s * (row[k] - pivot[static_cast<std::size_t>(k)]);
      }
    }
    const double inv = 1.0 / static_cast<double>(n);
    for (int k = 0; k < d; ++k) pivot[static_cast<std::size_t>(k)] += inv * correction[k];
  }
}

}  // namespace

std::string coreset_label(const CoresetConfig& config, std::string_view rule) {
  std::string label = "coreset-";
  label += config.size > 0 ? std::to_string(config.size) : "auto";
  label += "-";
  label += rule;
  return label;
}

CoresetReducer::CoresetReducer(std::string_view rule, CoresetConfig config)
    : config_(config),
      rule_(rule),
      inner_(make_aggregator(rule)),
      label_(coreset_label(config, rule)),
      kind_(kind_for(rule)) {
  ABFT_REQUIRE(config_.size >= 0, "coreset: size must be >= 1, or 0 for auto");
}

int CoresetReducer::centers_for(int n, int f) const noexcept {
  if (config_.size > 0) return config_.size;
  return f + static_cast<int>(std::ceil(std::sqrt(static_cast<double>(std::max(n, 0)))));
}

bool CoresetReducer::would_reduce(int n, int f) const noexcept {
  if (n <= 0 || f < 0) return false;
  const long long k = centers_for(n, f);
  return k + static_cast<long long>(f) < static_cast<long long>(n);
}

int CoresetReducer::max_usable_f(int n) const noexcept { return inner_->max_usable_f(n); }

int CoresetReducer::min_usable_f() const noexcept { return inner_->min_usable_f(); }

int CoresetReducer::reduce(const GradientBatch& batch, int f, AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  ABFT_REQUIRE(would_reduce(n, f),
               "coreset: (n, f) shape does not reduce — delegate to the inner rule");
  const int k = centers_for(n, f);
  const int z = f;

  // Seed center: the row nearest the coordinate-wise median pivot.  The
  // pivot is computed on the workspace transpose (scratch: median_inplace
  // reorders each column copy in place).
  ws.fill_colmajor(batch);
  ws.coreset_vec.resize(static_cast<std::size_t>(d));
  for (int kk = 0; kk < d; ++kk) {
    double* col =
        ws.colmajor.data() + static_cast<std::size_t>(kk) * static_cast<std::size_t>(n);
    ws.coreset_vec[static_cast<std::size_t>(kk)] = median_inplace(col, col + n);
  }
  int seed = 0;
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    const double dsq = sqdist_rows(batch.row(i).data(), ws.coreset_vec.data(), d);
    if (dsq < best) {
      best = dsq;
      seed = i;
    }
  }

  // dist[i] tracks the squared distance to the nearest selected center; -1
  // marks a selected center (sorts "nearest", so it can never be reselected
  // while z + 1 non-centers remain, which would_reduce guarantees).
  ws.coreset_dist.resize(static_cast<std::size_t>(n));
  ws.coreset_assign.resize(static_cast<std::size_t>(n));
  ws.coreset_ids.clear();
  ws.coreset_ids.push_back(seed);
  const double* seed_row = batch.row(seed).data();
  for (int i = 0; i < n; ++i) {
    ws.coreset_dist[static_cast<std::size_t>(i)] =
        sqdist_rows(batch.row(i).data(), seed_row, d);
    ws.coreset_assign[static_cast<std::size_t>(i)] = 0;
  }
  ws.coreset_dist[static_cast<std::size_t>(seed)] = -1.0;

  // a strictly farther than b: primary on distance, ties to the lower row
  // id, so selection is a deterministic pure function of the batch.
  const auto farther = [&ws](int a, int b) {
    const double da = ws.coreset_dist[static_cast<std::size_t>(a)];
    const double db = ws.coreset_dist[static_cast<std::size_t>(b)];
    return da > db || (da == db && a < b);
  };

  auto& heap = ws.coreset_heap;
  while (static_cast<int>(ws.coreset_ids.size()) < k) {
    // Bounded farthest-point queue: keep the top z + 1 farthest rows; the
    // queue front (least far of them) is the (z + 1)-th farthest overall —
    // stepping z rows in from the far end keeps up to z planted outliers
    // from steering center placement.
    heap.clear();
    for (int i = 0; i < n; ++i) {
      if (static_cast<int>(heap.size()) <= z) {
        heap.push_back(i);
        std::push_heap(heap.begin(), heap.end(), farther);
      } else if (farther(i, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), farther);
        heap.back() = i;
        std::push_heap(heap.begin(), heap.end(), farther);
      }
    }
    const int next = heap.front();
    if (ws.coreset_dist[static_cast<std::size_t>(next)] <= 0.0) break;  // only duplicates left
    const int slot = static_cast<int>(ws.coreset_ids.size());
    ws.coreset_ids.push_back(next);
    ws.coreset_dist[static_cast<std::size_t>(next)] = -1.0;
    ws.coreset_assign[static_cast<std::size_t>(next)] = slot;
    const double* center_row = batch.row(next).data();
    for (int i = 0; i < n; ++i) {
      double& di = ws.coreset_dist[static_cast<std::size_t>(i)];
      if (di <= 0.0) continue;  // centers and exact duplicates keep their slot
      const double dsq = sqdist_rows(batch.row(i).data(), center_row, d);
      if (dsq < di) {
        di = dsq;
        ws.coreset_assign[static_cast<std::size_t>(i)] = slot;
      }
    }
  }
  const int centers = static_cast<int>(ws.coreset_ids.size());

  // Outlier budget: the z farthest non-center rows ride along verbatim as
  // weight-1 singletons (ascending row id for a stable layout), so up to
  // z = f attack rows cannot fold into any center's weight.
  if (z > 0) {
    ws.order.resize(static_cast<std::size_t>(n));
    std::iota(ws.order.begin(), ws.order.end(), 0);
    std::nth_element(ws.order.begin(), ws.order.begin() + z, ws.order.end(), farther);
    std::sort(ws.order.begin(), ws.order.begin() + z);
    for (int o = 0; o < z; ++o) {
      const int id = ws.order[static_cast<std::size_t>(o)];
      ws.coreset_ids.push_back(id);
      ws.coreset_assign[static_cast<std::size_t>(id)] = centers + o;
    }
  }
  const int m = centers + z;

  // Every row contributes exactly one unit to its slot, so the integer
  // multiplicity weights sum to n by construction.
  ws.coreset_weights.assign(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < n; ++i) {
    ws.coreset_weights[static_cast<std::size_t>(ws.coreset_assign[static_cast<std::size_t>(i)])] +=
        1.0;
  }
  ws.coreset_batch.reshape(m, d);
  for (int s = 0; s < m; ++s) {
    ws.coreset_batch.set_row(s, batch.row(ws.coreset_ids[static_cast<std::size_t>(s)]));
  }
  return m;
}

Vector CoresetReducer::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  GradientBatch batch;
  batch.pack(gradients);
  AggregatorWorkspace workspace;
  Vector out;
  aggregate_into(out, batch, f, workspace);
  return out;
}

void CoresetReducer::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                    AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  if (!would_reduce(n, f)) {
    // Reduction cannot shrink this shape: run the inner rule on the original
    // batch, bit-identical to flat aggregation.
    inner_->aggregate_into(out, batch, f, ws);
    return;
  }
  const int m = reduce(batch, f, ws);
  const GradientBatch& cs = ws.coreset_batch;
  const std::vector<double>& w = ws.coreset_weights;
  switch (kind_) {
    case kAverage:
      weighted_average(out, cs, w, n);
      return;
    case kCge:
      weighted_cge(out, cs, w, n, f, ws);
      return;
    case kCwtm:
      weighted_cwtm(out, cs, w, n, f, ws);
      return;
    case kCwmed:
      weighted_cwmed(out, cs, w, n, ws);
      return;
    case kKrum:
      weighted_krum(out, cs, w, n, f, ws);
      return;
    case kMultiKrum:
      weighted_multikrum(out, cs, w, n, f, ws);
      return;
    case kGeomed:
      weighted_geomed(out, cs, w, n, ws);
      return;
    case kNormclip:
      weighted_normclip(out, cs, w, n, ws);
      return;
    case kCclip:
      weighted_cclip(out, cs, w, n, ws);
      return;
    default: {
      // Replication fallback (gmom, bulyan): materialize the replicated
      // multiset and run the registry rule on it — exact, not sublinear.
      ws.coreset_rep.reshape(n, d);
      int r = 0;
      for (int i = 0; i < m; ++i) {
        const auto row = cs.row(i);
        const auto copies = static_cast<long long>(w[static_cast<std::size_t>(i)]);
        for (long long c = 0; c < copies; ++c) ws.coreset_rep.set_row(r++, row);
      }
      inner_->aggregate_into(out, ws.coreset_rep, f, ws);
      return;
    }
  }
}

}  // namespace abft::agg

#include "abft/agg/krum.hpp"

#include <algorithm>
#include <numeric>

#include "abft/util/check.hpp"

namespace abft::agg {

namespace {

std::vector<double> scores_with_neighbors(std::span<const Vector> gradients, int num_neighbors) {
  std::vector<double> score(gradients.size(), 0.0);
  std::vector<double> dists;
  dists.reserve(gradients.size() - 1);
  for (std::size_t i = 0; i < gradients.size(); ++i) {
    dists.clear();
    for (std::size_t j = 0; j < gradients.size(); ++j) {
      if (i == j) continue;
      const double d = linalg::distance(gradients[i], gradients[j]);
      dists.push_back(d * d);
    }
    std::nth_element(dists.begin(), dists.begin() + (num_neighbors - 1), dists.end());
    score[i] = std::accumulate(dists.begin(), dists.begin() + num_neighbors, 0.0);
  }
  return score;
}

}  // namespace

std::vector<double> KrumAggregator::scores(std::span<const Vector> gradients, int f) {
  const int n = static_cast<int>(gradients.size());
  ABFT_REQUIRE(n > 2 * f + 2, "krum needs n > 2f + 2");
  return scores_with_neighbors(gradients, n - f - 2);
}

std::vector<double> KrumAggregator::relaxed_scores(std::span<const Vector> gradients, int f) {
  const int n = static_cast<int>(gradients.size());
  ABFT_REQUIRE(n >= 2, "relaxed krum scores need at least two gradients");
  ABFT_REQUIRE(f >= 0, "fault bound must be non-negative");
  return scores_with_neighbors(gradients, std::max(1, n - f - 2));
}

Vector KrumAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  const auto score = scores(gradients, f);
  const auto best = std::min_element(score.begin(), score.end()) - score.begin();
  return gradients[static_cast<std::size_t>(best)];
}

void KrumAggregator::batched_scores(const GradientBatch& batch, int f,
                                    AggregatorWorkspace& ws) {
  const int n = batch.rows();
  ABFT_REQUIRE(n > 2 * f + 2, "krum needs n > 2f + 2");
  ws.fill_pairwise_sqdist(batch);
  const int neighbors = n - f - 2;
  ws.scores.resize(static_cast<std::size_t>(n));
  ws.scratch.resize(static_cast<std::size_t>(n - 1));
  ws.pairrow.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Row i of the logical distance matrix, gathered from the packed
    // triangle (f32-lane values promoted); same values in the same
    // ascending-j order as the old square layout, so exact mode stays
    // bit-identical.
    ws.gather_pair_row(i, n, ws.pairrow.data());
    int m = 0;
    for (int j = 0; j < n; ++j) {
      if (j != i) ws.scratch[static_cast<std::size_t>(m++)] = ws.pairrow[static_cast<std::size_t>(j)];
    }
    std::nth_element(ws.scratch.begin(), ws.scratch.begin() + (neighbors - 1),
                     ws.scratch.begin() + m);
    ws.scores[static_cast<std::size_t>(i)] =
        std::accumulate(ws.scratch.begin(), ws.scratch.begin() + neighbors, 0.0);
  }
}

void KrumAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                    AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  batched_scores(batch, f, ws);
  const auto best = static_cast<int>(
      std::min_element(ws.scores.begin(), ws.scores.end()) - ws.scores.begin());
  resize_output(out, d);
  const auto row = batch.row(best);
  std::copy(row.begin(), row.end(), out.coefficients().begin());
}

MultiKrumAggregator::MultiKrumAggregator(int m) : m_(m) {
  ABFT_REQUIRE(m >= 0, "multi-krum m must be non-negative");
}

Vector MultiKrumAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  const int n = static_cast<int>(gradients.size());
  const int m = m_ > 0 ? m_ : n - f;
  ABFT_REQUIRE(m <= n, "multi-krum m must be at most n");
  const auto score = KrumAggregator::scores(gradients, f);
  std::vector<int> order(gradients.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&score](int a, int b) {
    return score[static_cast<std::size_t>(a)] < score[static_cast<std::size_t>(b)];
  });
  Vector sum(dim);
  for (int i = 0; i < m; ++i) sum += gradients[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
  return sum / static_cast<double>(m);
}

void MultiKrumAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                         AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  const int m = m_ > 0 ? m_ : n - f;
  ABFT_REQUIRE(m <= n, "multi-krum m must be at most n");
  KrumAggregator::batched_scores(batch, f, ws);
  ws.order.resize(static_cast<std::size_t>(n));
  std::iota(ws.order.begin(), ws.order.end(), 0);
  std::stable_sort(ws.order.begin(), ws.order.end(), [&ws](int a, int b) {
    return ws.scores[static_cast<std::size_t>(a)] < ws.scores[static_cast<std::size_t>(b)];
  });
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  for (int s = 0; s < m; ++s) {
    const double* row = batch.row(ws.order[static_cast<std::size_t>(s)]).data();
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += row[k];
  }
  const double inv = 1.0 / static_cast<double>(m);
  for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] *= inv;
}

}  // namespace abft::agg

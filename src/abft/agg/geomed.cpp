#include "abft/agg/geomed.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "abft/agg/simd_util.hpp"
#include "abft/util/check.hpp"

namespace abft::agg {

namespace {

// One Weiszfeld driver, two reduction policies.  ExactReduce's sequential
// loops keep the batched path bit-compatible with the legacy span path;
// LanedReduce (AggMode::fast) carries independent partial sums so the
// distance and step-length reductions vectorize without -ffast-math.  The
// damping, tolerance and iteration schedule live in the shared driver, so
// the two modes cannot drift structurally — only in rounding, which the
// tolerance-parity suite bounds.

struct ExactReduce {
  static double sqdist(const double* a, const double* b, int d) {
    double sum = 0.0;
    for (int k = 0; k < d; ++k) {
      const double diff = a[k] - b[k];
      sum += diff * diff;
    }
    return sum;
  }
  /// cur = num * inv, formed in place; returns the squared step length.
  static double scale_update(const double* num, double inv, double* cur, int d) {
    double moved_sq = 0.0;
    for (int k = 0; k < d; ++k) {
      const double next_k = num[k] * inv;
      const double diff = next_k - cur[k];
      moved_sq += diff * diff;
      cur[k] = next_k;
    }
    return moved_sq;
  }
};

struct LanedReduce {
  static double sqdist(const double* a, const double* b, int d) {
    return detail::laned_sqdist(a, b, d);
  }
  static double scale_update(const double* num, double inv, double* cur, int d) {
    double lanes[detail::kReduceLanes] = {0.0};
    int k = 0;
    for (; k + detail::kReduceLanes <= d; k += detail::kReduceLanes) {
      for (int t = 0; t < detail::kReduceLanes; ++t) {
        const double next_k = num[k + t] * inv;
        const double diff = next_k - cur[k + t];
        lanes[t] += diff * diff;
        cur[k + t] = next_k;
      }
    }
    double moved_sq = 0.0;
    for (; k < d; ++k) {
      const double next_k = num[k] * inv;
      const double diff = next_k - cur[k];
      moved_sq += diff * diff;
      cur[k] = next_k;
    }
    for (int t = 0; t < detail::kReduceLanes; ++t) moved_sq += lanes[t];
    return moved_sq;
  }
};

/// Damped Weiszfeld over the batch rows into `out`; the numerator lives in
/// workspace.vecbuf, so the iteration loop allocates nothing.  The distance
/// pass and the weighted accumulation of each row run back-to-back (the row
/// is still cache-hot for the second read).
template <typename Reduce>
void weiszfeld_into(Vector& out, const GradientBatch& batch, AggregatorWorkspace& ws,
                    double tolerance, int max_iterations) {
  const int n = batch.rows();
  const int d = batch.cols();
  resize_output(out, d);
  auto cur = out.coefficients();
  // current = mean of the rows (same summation order as linalg::mean).
  std::fill(cur.begin(), cur.end(), 0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = batch.row(i).data();
    for (int k = 0; k < d; ++k) cur[static_cast<std::size_t>(k)] += row[k];
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  double sq = 0.0;
  for (int k = 0; k < d; ++k) {
    cur[static_cast<std::size_t>(k)] *= inv_n;
    sq += cur[static_cast<std::size_t>(k)] * cur[static_cast<std::size_t>(k)];
  }
  const double scale = std::max(1.0, std::sqrt(sq));
  // Damping floor: weights 1 / max(dist, floor) sidestep the singularity
  // when the iterate coincides with an input point.
  const double floor = 1e-12 * scale;

  ws.vecbuf.resize(static_cast<std::size_t>(d));
  double* num = ws.vecbuf.data();
  for (int iter = 0; iter < max_iterations; ++iter) {
    std::fill(num, num + d, 0.0);
    double denominator = 0.0;
    for (int i = 0; i < n; ++i) {
      const double* row = batch.row(i).data();
      const double dist = std::max(std::sqrt(Reduce::sqdist(cur.data(), row, d)), floor);
      const double w = 1.0 / dist;
      for (int k = 0; k < d; ++k) num[k] += w * row[k];
      denominator += w;
    }
    const double moved_sq = Reduce::scale_update(num, 1.0 / denominator, cur.data(), d);
    if (std::sqrt(moved_sq) <= tolerance * scale) break;
  }
}

/// Float32-lane Weiszfeld: the distance pass — the bandwidth-bound O(n d)
/// read per iteration — runs on the demoted rows with 16-float lanes, and
/// the iterate is demoted once per iteration (ws.vecbuf_f32) so both sqdist
/// operands are float.  The numerator/denominator accumulation and the
/// damped update stay f64 (LanedReduce::scale_update), so the emitted
/// aggregate is a f64 fixed point of the f32-measured weights.  Same
/// damping, tolerance and iteration schedule as the shared driver.
void weiszfeld_into_f32(Vector& out, const GradientBatch& batch, AggregatorWorkspace& ws,
                        double tolerance, int max_iterations) {
  const int n = batch.rows();
  const int d = batch.cols();
  resize_output(out, d);
  auto cur = out.coefficients();
  // current = mean of the rows (same summation order as linalg::mean).
  std::fill(cur.begin(), cur.end(), 0.0);
  for (int i = 0; i < n; ++i) {
    const double* row = batch.row(i).data();
    for (int k = 0; k < d; ++k) cur[static_cast<std::size_t>(k)] += row[k];
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  double sq = 0.0;
  for (int k = 0; k < d; ++k) {
    cur[static_cast<std::size_t>(k)] *= inv_n;
    sq += cur[static_cast<std::size_t>(k)] * cur[static_cast<std::size_t>(k)];
  }
  const double scale = std::max(1.0, std::sqrt(sq));
  const double floor = 1e-12 * scale;

  ws.fill_rows_f32(batch);
  const float* rows = ws.rows_f32.data();
  ws.vecbuf.resize(static_cast<std::size_t>(d));
  ws.vecbuf_f32.resize(static_cast<std::size_t>(d));
  double* num = ws.vecbuf.data();
  float* curf = ws.vecbuf_f32.data();
  for (int iter = 0; iter < max_iterations; ++iter) {
    for (int k = 0; k < d; ++k) curf[k] = static_cast<float>(cur[static_cast<std::size_t>(k)]);
    std::fill(num, num + d, 0.0);
    double denominator = 0.0;
    for (int i = 0; i < n; ++i) {
      const float* row = rows + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
      const double dist =
          std::max(std::sqrt(detail::laned_sqdist_f32(curf, row, d)), floor);
      const double w = 1.0 / dist;
      for (int k = 0; k < d; ++k) num[k] += w * static_cast<double>(row[k]);
      denominator += w;
    }
    const double moved_sq = LanedReduce::scale_update(num, 1.0 / denominator, cur.data(), d);
    if (std::sqrt(moved_sq) <= tolerance * scale) break;
  }
}

}  // namespace

Vector geometric_median(std::span<const Vector> points, double tolerance, int max_iterations) {
  ABFT_REQUIRE(!points.empty(), "geometric median of empty family");
  Vector current = linalg::mean(points);
  const double scale = std::max(1.0, current.norm());
  // The numerator is hoisted out of the iteration loop and re-zeroed in
  // place, so Weiszfeld allocates nothing after the first update.
  Vector numerator(current.dim());
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Damped Weiszfeld update: weights 1 / max(dist, floor) sidestep the
    // singularity when the iterate coincides with an input point.
    auto num = numerator.coefficients();
    std::fill(num.begin(), num.end(), 0.0);
    double denominator = 0.0;
    for (const auto& p : points) {
      const double dist = std::max(linalg::distance(current, p), 1e-12 * scale);
      const double w = 1.0 / dist;
      numerator.add_scaled(w, p);
      denominator += w;
    }
    // next = numerator / denominator, formed in place while accumulating the
    // step length ||next - current||.
    const double inv = 1.0 / denominator;
    auto cur = current.coefficients();
    double moved_sq = 0.0;
    for (std::size_t k = 0; k < cur.size(); ++k) {
      const double next_k = num[k] * inv;
      const double diff = next_k - cur[k];
      moved_sq += diff * diff;
      cur[k] = next_k;
    }
    if (std::sqrt(moved_sq) <= tolerance * scale) break;
  }
  return current;
}

void geometric_median_into(Vector& out, const GradientBatch& batch,
                           AggregatorWorkspace& ws, double tolerance, int max_iterations) {
  const int n = batch.rows();
  const int d = batch.cols();
  ABFT_REQUIRE(n > 0 && d > 0, "geometric median of empty family");
  // The laned kernels only pay off once a row spans a few SIMD registers;
  // below that the exact path is already optimal, so fast mode routes tiny
  // dimensions back to it (still a valid "fast" result — exact is within
  // every tolerance bound).
  if (ws.f32_lane() && d >= detail::kF32DistanceLaneMinDim) {
    weiszfeld_into_f32(out, batch, ws, tolerance, max_iterations);
  } else if (ws.mode == AggMode::fast && d >= 2 * detail::kReduceLanes) {
    weiszfeld_into<LanedReduce>(out, batch, ws, tolerance, max_iterations);
  } else {
    weiszfeld_into<ExactReduce>(out, batch, ws, tolerance, max_iterations);
  }
}

Vector GeometricMedianAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  return geometric_median(gradients);
}

void GeometricMedianAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                               AggregatorWorkspace& ws) const {
  validate_batch(batch, f);
  geometric_median_into(out, batch, ws);
}

GmomAggregator::GmomAggregator(int num_buckets) : num_buckets_(num_buckets) {
  ABFT_REQUIRE(num_buckets >= 0, "gmom bucket count must be non-negative");
}

Vector GmomAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  const int n = static_cast<int>(gradients.size());
  const int k = std::min(n, num_buckets_ > 0 ? num_buckets_ : 2 * f + 1);
  // Contiguous buckets of near-equal size (deterministic partition).
  std::vector<Vector> bucket_means;
  bucket_means.reserve(static_cast<std::size_t>(k));
  int start = 0;
  for (int b = 0; b < k; ++b) {
    const int size = (n - start) / (k - b);
    Vector sum(dim);
    for (int i = start; i < start + size; ++i) sum += gradients[static_cast<std::size_t>(i)];
    bucket_means.push_back(sum / static_cast<double>(size));
    start += size;
  }
  return geometric_median(bucket_means);
}

void GmomAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                    AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  const int k = std::min(n, num_buckets_ > 0 ? num_buckets_ : 2 * f + 1);
  // Bucket means go into the auxiliary batch (same deterministic partition
  // as the span path), then the batched Weiszfeld runs over them.
  ws.aux_batch.reshape(k, d);
  int start = 0;
  for (int b = 0; b < k; ++b) {
    const int size = (n - start) / (k - b);
    auto mean_row = ws.aux_batch.row(b);
    std::fill(mean_row.begin(), mean_row.end(), 0.0);
    for (int i = start; i < start + size; ++i) {
      const double* row = batch.row(i).data();
      for (int kk = 0; kk < d; ++kk) mean_row[static_cast<std::size_t>(kk)] += row[kk];
    }
    const double inv = 1.0 / static_cast<double>(size);
    for (int kk = 0; kk < d; ++kk) mean_row[static_cast<std::size_t>(kk)] *= inv;
    start += size;
  }
  geometric_median_into(out, ws.aux_batch, ws);
}

}  // namespace abft::agg

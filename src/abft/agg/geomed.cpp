#include "abft/agg/geomed.hpp"

#include <algorithm>
#include <vector>

#include "abft/util/check.hpp"

namespace abft::agg {

Vector geometric_median(std::span<const Vector> points, double tolerance, int max_iterations) {
  ABFT_REQUIRE(!points.empty(), "geometric median of empty family");
  Vector current = linalg::mean(points);
  const double scale = std::max(1.0, current.norm());
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Damped Weiszfeld update: weights 1 / max(dist, floor) sidestep the
    // singularity when the iterate coincides with an input point.
    Vector numerator(current.dim());
    double denominator = 0.0;
    for (const auto& p : points) {
      const double dist = std::max(linalg::distance(current, p), 1e-12 * scale);
      const double w = 1.0 / dist;
      numerator.add_scaled(w, p);
      denominator += w;
    }
    Vector next = numerator / denominator;
    const double moved = linalg::distance(next, current);
    current = std::move(next);
    if (moved <= tolerance * scale) break;
  }
  return current;
}

Vector GeometricMedianAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  validate_gradients(gradients, f);
  return geometric_median(gradients);
}

GmomAggregator::GmomAggregator(int num_buckets) : num_buckets_(num_buckets) {
  ABFT_REQUIRE(num_buckets >= 0, "gmom bucket count must be non-negative");
}

Vector GmomAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  const int n = static_cast<int>(gradients.size());
  const int k = std::min(n, num_buckets_ > 0 ? num_buckets_ : 2 * f + 1);
  // Contiguous buckets of near-equal size (deterministic partition).
  std::vector<Vector> bucket_means;
  bucket_means.reserve(static_cast<std::size_t>(k));
  int start = 0;
  for (int b = 0; b < k; ++b) {
    const int size = (n - start) / (k - b);
    Vector sum(dim);
    for (int i = start; i < start + size; ++i) sum += gradients[static_cast<std::size_t>(i)];
    bucket_means.push_back(sum / static_cast<double>(size));
    start += size;
  }
  return geometric_median(bucket_means);
}

}  // namespace abft::agg

// Krum and Multi-Krum (Blanchard et al., NeurIPS 2017) — the best-known
// distance-score gradient filters; the paper cites them as related work
// (Section 2.2), and we include them as comparison baselines.
//
// Krum score of gradient i: the sum of squared Euclidean distances from g_i
// to its n - f - 2 nearest other gradients.  Krum outputs the gradient with
// the lowest score; Multi-Krum averages the m lowest-score gradients.
// Both require n > 2f + 2.
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

class KrumAggregator final : public GradientAggregator {
 public:
  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "krum"; }
  /// n > 2f + 2; below n = 3 the rule cannot run at all (-1).
  [[nodiscard]] int max_usable_f(int n) const noexcept override {
    return n < 3 ? -1 : (n - 3) / 2;
  }

  /// Krum scores for all gradients (exposed for tests and Bulyan).
  [[nodiscard]] static std::vector<double> scores(std::span<const Vector> gradients, int f);

  /// Batched Krum scores, written into workspace.scores.  Fills the shared
  /// pairwise squared-distance matrix in workspace.pairdist via the Gram
  /// identity; Krum and Multi-Krum both score from it (Bulyan runs its own
  /// active-set scoring loop over the same fill_pairwise_sqdist matrix).
  static void batched_scores(const GradientBatch& batch, int f,
                             AggregatorWorkspace& workspace);

  /// Scores with the neighbour count clamped to at least one — used by
  /// Bulyan, whose selection loop shrinks the pool below Krum's own n > 2f+2
  /// requirement by design.
  [[nodiscard]] static std::vector<double> relaxed_scores(std::span<const Vector> gradients,
                                                          int f);
};

class MultiKrumAggregator final : public GradientAggregator {
 public:
  /// Averages the `m` lowest-score gradients; m = 0 means the canonical
  /// choice m = n - f computed per call.
  explicit MultiKrumAggregator(int m = 0);

  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "multikrum"; }
  /// n > 2f + 2 (same scoring precondition as Krum); -1 below n = 3.
  [[nodiscard]] int max_usable_f(int n) const noexcept override {
    return n < 3 ? -1 : (n - 3) / 2;
  }

 private:
  int m_;
};

}  // namespace abft::agg

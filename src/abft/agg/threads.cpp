#include "abft/agg/threads.hpp"

#include <utility>

#include "abft/util/check.hpp"

namespace abft::agg {

namespace detail {

bool& this_thread_in_pool_job() noexcept {
  static thread_local bool in_job = false;
  return in_job;
}

}  // namespace detail

namespace {

/// RAII guard for the thread-local nesting flag: chunks set it for their
/// duration (including when they unwind with an exception).
struct InJobScope {
  InJobScope() { detail::this_thread_in_pool_job() = true; }
  ~InJobScope() { detail::this_thread_in_pool_job() = false; }
};

}  // namespace

ThreadPool::ThreadPool(int width) : width_(std::max(1, width)) {
  threads_.reserve(static_cast<std::size_t>(width_ - 1));
  for (int slot = 0; slot < width_ - 1; ++slot) {
    threads_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_chunks(int begin, int end, int workers, InvokeFn invoke, void* ctx) {
  // Chunking matches the legacy spawn-per-call parallel_for exactly:
  // ceil(range / workers), last chunk possibly short (or empty — workers is
  // clamped to the range, so chunk 0 is never empty).
  const int chunk = (end - begin + workers - 1) / workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_begin_ = begin;
    job_end_ = end;
    job_workers_ = workers;
    job_chunk_ = chunk;
    job_invoke_ = invoke;
    job_ctx_ = ctx;
    pending_ = workers - 1;
    worker_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  std::exception_ptr caller_error;
  {
    InJobScope scope;
    try {
      invoke(ctx, begin, std::min(begin + chunk, end));
    } catch (...) {
      caller_error = std::current_exception();
    }
  }
  std::exception_ptr worker_error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    worker_error = std::exchange(worker_error_, nullptr);
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

void ThreadPool::worker_loop(int slot) {
  std::uint64_t seen = 0;
  for (;;) {
    InvokeFn invoke = nullptr;
    void* ctx = nullptr;
    int lo = 0;
    int hi = 0;
    bool participates = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this, seen] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      // Worker `slot` owns chunk slot + 1 (the caller runs chunk 0).
      participates = slot + 1 < job_workers_;
      if (participates) {
        invoke = job_invoke_;
        ctx = job_ctx_;
        lo = job_begin_ + (slot + 1) * job_chunk_;
        hi = std::min(lo + job_chunk_, job_end_);
      }
    }
    if (!participates) continue;
    std::exception_ptr error;
    if (lo < hi) {
      InJobScope scope;
      try {
        invoke(ctx, lo, hi);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && worker_error_ == nullptr) worker_error_ = error;
      --pending_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace abft::agg

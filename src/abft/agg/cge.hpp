// Comparative Gradient Elimination (CGE) — paper eq. (23).  Sorts gradients
// by Euclidean norm and returns the SUM of the n-f smallest-norm gradients
// (note: a sum, not an average — this matches the paper exactly, and the
// Theorem 4/5 constants are stated for the sum).
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

class CgeAggregator final : public GradientAggregator {
 public:
  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "cge"; }

  /// Indices of the n-f gradients CGE keeps (ties broken by index, matching
  /// the "ties broken arbitrarily" freedom in the paper).  Exposed for tests.
  [[nodiscard]] static std::vector<int> kept_indices(std::span<const Vector> gradients, int f);
};

}  // namespace abft::agg

// Startup calibration of the rank-kernel cutoff (see rank_kernel.hpp).
//
// The O(n^2) branchless rank kernel beats O(n log n) nth_element selection
// up to some n that depends on the host's SIMD width (a 512-bit host
// amortizes the inner broadcast-compare loop over twice as many lanes as a
// 256-bit one).  Instead of hard-coding the crossover, race the two kernels
// once per process on synthetic columns at a few candidate sizes and keep
// the largest candidate where the rank kernel still wins.  The whole
// calibration touches a few hundred KiB and costs well under a millisecond;
// the result is cached for the lifetime of the process.
#include "abft/agg/rank_kernel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

namespace abft::agg::detail {

namespace {

/// Deterministic xorshift fill — calibration must not consume any seeded
/// stream the simulations use.
void fill_pseudorandom(std::vector<double>& column, std::uint64_t seed) {
  std::uint64_t state = seed | 1u;
  for (auto& value : column) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    value = static_cast<double>(state >> 11) * (1.0 / 9007199254740992.0) - 0.5;
  }
}

template <typename Fn>
double time_best_of(int repeats, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto start = clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(clock::now() - start).count());
  }
  return best;
}

int calibrate() {
  constexpr int kCandidates[] = {64, 128, 256, 512};
  constexpr int kRepeats = 5;
  std::vector<double> column(static_cast<std::size_t>(kRankKernelCapacity));
  std::vector<double> scratch(column.size());
  std::int64_t lt[kRankKernelCapacity];
  int cutoff = 0;
  for (const int n : kCandidates) {
    fill_pseudorandom(column, 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(n));
    volatile double sink = 0.0;
    const double rank_s = time_best_of(kRepeats, [&] {
      rank_counts(column.data(), n, lt);
      sink = static_cast<double>(lt[0]);
    });
    // The competing selection path: copy the column (it is consumed in
    // place) and run the two nth_element partitions a trimmed sum needs.
    const int f = std::max(1, n / 5);
    const double select_s = time_best_of(kRepeats, [&] {
      std::copy(column.begin(), column.begin() + n, scratch.begin());
      std::nth_element(scratch.begin(), scratch.begin() + f, scratch.begin() + n);
      std::nth_element(scratch.begin() + f, scratch.begin() + (n - f - 1),
                       scratch.begin() + n);
      sink = scratch[static_cast<std::size_t>(f)];
    });
    if (rank_s <= select_s) {
      cutoff = n;
    } else {
      break;  // crossover passed; larger n only gets worse for O(n^2)
    }
  }
  // A cold or heavily loaded machine can make the race inconclusive (the
  // rank kernel "loses" at every size); fall back to the exact-mode value
  // rather than disabling the kernel outright.
  return cutoff == 0 ? kRankKernelExactCutoff : cutoff;
}

}  // namespace

int rank_kernel_cutoff() {
  static const int cutoff = calibrate();
  return cutoff;
}

int effective_rank_cutoff(AggMode mode) {
  // The environment override wins in both modes and is parsed on every call
  // (one getenv, far off the per-column hot loop) so it is never baked into
  // the calibration cache: ABFT_RANK_KERNEL_CUTOFF=0 reliably forces the
  // rank kernel off even in exact mode, which previously pinned the
  // constant crossover unconditionally.
  if (const char* env = std::getenv("ABFT_RANK_KERNEL_CUTOFF")) {
    const long parsed = std::strtol(env, nullptr, 10);
    return std::clamp(static_cast<int>(parsed), 0, kRankKernelCapacity);
  }
  return mode == AggMode::fast ? rank_kernel_cutoff() : kRankKernelExactCutoff;
}

}  // namespace abft::agg::detail

// Plain averaging — the traditional (non-robust) DGD aggregation; the paper's
// baseline that fails under Byzantine faults (Figures 2-5, red curves).
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

class AverageAggregator final : public GradientAggregator {
 public:
  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "average"; }
};

}  // namespace abft::agg

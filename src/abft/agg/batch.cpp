#include "abft/agg/batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "abft/util/check.hpp"

namespace abft::agg {

namespace {

/// Tile width of the Gram accumulation: row segments of kChunk doubles stay
/// L2-resident across the O(n^2) pair sweep, so the whole batch streams from
/// memory once instead of once per pair.
constexpr int kChunk = 1024;

/// Start of row i's run in the packed strictly-upper-triangular layout
/// (== AggregatorWorkspace::pair_index(i, i + 1, n); for i == n - 1 it is
/// the one-past-end offset, which callers form but never dereference).
std::size_t pair_row_start(int i, int n) {
  return static_cast<std::size_t>(i) * (2 * static_cast<std::size_t>(n) - i - 1) / 2;
}

/// Accumulates partial dot products <row_i, row_j> over the full chunk
/// [k0, k0 + kChunk) into the packed triangle of `pairdist` for i in
/// [i_begin, i_end), j > i.  The fixed-size lane array makes the inner
/// product vectorizable without -ffast-math (each lane is an independent
/// partial sum), and the compile-time k extent is what lets the compiler
/// schedule the vector loop well — a runtime bound here costs ~3x.
void accumulate_pair_dots_chunk(const GradientBatch& batch, double* pairdist, int n,
                                int i_begin, int i_end, int k0) {
  constexpr int kLanes = 8;
  for (int i = i_begin; i < i_end; ++i) {
    const double* ri = batch.row(i).data();
    double* prow = pairdist + pair_row_start(i, n);
    for (int j = i + 1; j < n; ++j) {
      const double* rj = batch.row(j).data();
      double lanes[kLanes] = {0.0};
      for (int k = k0; k < k0 + kChunk; k += kLanes) {
        for (int b = 0; b < kLanes; ++b) lanes[b] += ri[k + b] * rj[k + b];
      }
      double dot = 0.0;
      for (int b = 0; b < kLanes; ++b) dot += lanes[b];
      prow[j - i - 1] += dot;
    }
  }
}

/// Runtime-bound variant for the final partial chunk [k0, k1).
void accumulate_pair_dots_tail(const GradientBatch& batch, double* pairdist, int n,
                               int i_begin, int i_end, int k0, int k1) {
  constexpr int kLanes = 8;
  for (int i = i_begin; i < i_end; ++i) {
    const double* ri = batch.row(i).data();
    double* prow = pairdist + pair_row_start(i, n);
    for (int j = i + 1; j < n; ++j) {
      const double* rj = batch.row(j).data();
      double lanes[kLanes] = {0.0};
      int k = k0;
      for (; k + kLanes <= k1; k += kLanes) {
        for (int b = 0; b < kLanes; ++b) lanes[b] += ri[k + b] * rj[k + b];
      }
      double dot = 0.0;
      for (; k < k1; ++k) dot += ri[k] * rj[k];
      for (int b = 0; b < kLanes; ++b) dot += lanes[b];
      prow[j - i - 1] += dot;
    }
  }
}

/// f32-lane full-chunk kernel: same chunk walk over the demoted rows, 16
/// float lanes (one 512-bit vector) per group.  Lane accumulation stays in
/// float — each lane sums kChunk / 16 = 64 products, far inside the f32
/// tolerance envelopes — and the cross-lane reduction widens to float dot,
/// accumulated across chunks in the f32 packed triangle.
void accumulate_pair_dots_chunk_f32(const float* rows, float* pairdist, int n, int d,
                                    int i_begin, int i_end, int k0) {
  constexpr int kLanes = 16;
  for (int i = i_begin; i < i_end; ++i) {
    const float* ri = rows + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
    float* prow = pairdist + pair_row_start(i, n);
    for (int j = i + 1; j < n; ++j) {
      const float* rj = rows + static_cast<std::size_t>(j) * static_cast<std::size_t>(d);
      float lanes[kLanes] = {0.0f};
      for (int k = k0; k < k0 + kChunk; k += kLanes) {
        for (int b = 0; b < kLanes; ++b) lanes[b] += ri[k + b] * rj[k + b];
      }
      float dot = 0.0f;
      for (int b = 0; b < kLanes; ++b) dot += lanes[b];
      prow[j - i - 1] += dot;
    }
  }
}

/// f32-lane runtime-bound variant for the final partial chunk [k0, k1).
void accumulate_pair_dots_tail_f32(const float* rows, float* pairdist, int n, int d,
                                   int i_begin, int i_end, int k0, int k1) {
  constexpr int kLanes = 16;
  for (int i = i_begin; i < i_end; ++i) {
    const float* ri = rows + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
    float* prow = pairdist + pair_row_start(i, n);
    for (int j = i + 1; j < n; ++j) {
      const float* rj = rows + static_cast<std::size_t>(j) * static_cast<std::size_t>(d);
      float lanes[kLanes] = {0.0f};
      int k = k0;
      for (; k + kLanes <= k1; k += kLanes) {
        for (int b = 0; b < kLanes; ++b) lanes[b] += ri[k + b] * rj[k + b];
      }
      float dot = 0.0f;
      for (; k < k1; ++k) dot += ri[k] * rj[k];
      for (int b = 0; b < kLanes; ++b) dot += lanes[b];
      prow[j - i - 1] += dot;
    }
  }
}

#if defined(__AVX512F__)
/// Relaxed-parity (AggMode::fast) AVX-512 variant of the full-chunk kernel:
/// four independent zmm FMA accumulators (32 partial sums) cover the FMA
/// latency chain, roughly doubling throughput over the auto-vectorized
/// 8-lane scalar kernel.  The horizontal reduction order differs from the
/// exact kernel's sequential lane sum, so this path is fast-mode only.
void accumulate_pair_dots_chunk_avx512(const GradientBatch& batch, double* pairdist, int n,
                                       int i_begin, int i_end, int k0) {
  static_assert(kChunk % 32 == 0, "avx512 gram kernel consumes 32 doubles per step");
  for (int i = i_begin; i < i_end; ++i) {
    const double* ri = batch.row(i).data();
    double* prow = pairdist + pair_row_start(i, n);
    for (int j = i + 1; j < n; ++j) {
      const double* rj = batch.row(j).data();
      __m512d acc0 = _mm512_setzero_pd();
      __m512d acc1 = _mm512_setzero_pd();
      __m512d acc2 = _mm512_setzero_pd();
      __m512d acc3 = _mm512_setzero_pd();
      for (int k = k0; k < k0 + kChunk; k += 32) {
        acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(ri + k), _mm512_loadu_pd(rj + k), acc0);
        acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(ri + k + 8), _mm512_loadu_pd(rj + k + 8), acc1);
        acc2 = _mm512_fmadd_pd(_mm512_loadu_pd(ri + k + 16), _mm512_loadu_pd(rj + k + 16), acc2);
        acc3 = _mm512_fmadd_pd(_mm512_loadu_pd(ri + k + 24), _mm512_loadu_pd(rj + k + 24), acc3);
      }
      const double dot = _mm512_reduce_add_pd(
          _mm512_add_pd(_mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3)));
      prow[j - i - 1] += dot;
    }
  }
}

/// f32 AVX-512 full-chunk kernel: four 16-float FMA accumulators (64 partial
/// sums) — the same latency-covering shape as the f64 variant at half the
/// memory traffic.  f32 lane only (fast mode by construction).
void accumulate_pair_dots_chunk_avx512_f32(const float* rows, float* pairdist, int n,
                                           int d, int i_begin, int i_end, int k0) {
  static_assert(kChunk % 64 == 0, "avx512 f32 gram kernel consumes 64 floats per step");
  for (int i = i_begin; i < i_end; ++i) {
    const float* ri = rows + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
    float* prow = pairdist + pair_row_start(i, n);
    for (int j = i + 1; j < n; ++j) {
      const float* rj = rows + static_cast<std::size_t>(j) * static_cast<std::size_t>(d);
      __m512 acc0 = _mm512_setzero_ps();
      __m512 acc1 = _mm512_setzero_ps();
      __m512 acc2 = _mm512_setzero_ps();
      __m512 acc3 = _mm512_setzero_ps();
      for (int k = k0; k < k0 + kChunk; k += 64) {
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(ri + k), _mm512_loadu_ps(rj + k), acc0);
        acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(ri + k + 16), _mm512_loadu_ps(rj + k + 16), acc1);
        acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(ri + k + 32), _mm512_loadu_ps(rj + k + 32), acc2);
        acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(ri + k + 48), _mm512_loadu_ps(rj + k + 48), acc3);
      }
      const float dot = _mm512_reduce_add_ps(
          _mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3)));
      prow[j - i - 1] += dot;
    }
  }
}
#endif  // __AVX512F__

/// True when the fast-mode Gram kernel may use AVX-512: compile-time ISA
/// support AND a runtime CPU check (one cpuid probe, cached), so a binary
/// built with -march=native on an AVX-512 host degrades safely elsewhere.
bool gram_avx512_available() {
#if defined(__AVX512F__) && (defined(__GNUC__) || defined(__clang__))
  static const bool available = __builtin_cpu_supports("avx512f") != 0;
  return available;
#else
  return false;
#endif
}

/// Walks all d-chunks for rows [i_begin, i_end): full chunks through the
/// fixed-extent kernel (the AVX-512 variant in fast mode, when the CPU has
/// it), the remainder through the tail kernel.
void accumulate_pair_dots(const GradientBatch& batch, double* pairdist, int n, int d,
                          int i_begin, int i_end, AggMode mode) {
  const bool use_avx512 = mode == AggMode::fast && gram_avx512_available();
  (void)use_avx512;
  int k0 = 0;
  for (; k0 + kChunk <= d; k0 += kChunk) {
#if defined(__AVX512F__)
    if (use_avx512) {
      accumulate_pair_dots_chunk_avx512(batch, pairdist, n, i_begin, i_end, k0);
      continue;
    }
#endif
    accumulate_pair_dots_chunk(batch, pairdist, n, i_begin, i_end, k0);
  }
  if (k0 < d) accumulate_pair_dots_tail(batch, pairdist, n, i_begin, i_end, k0, d);
}

/// f32-lane chunk walker (the lane implies fast mode, so AVX-512 is taken
/// whenever the CPU has it).
void accumulate_pair_dots_f32(const float* rows, float* pairdist, int n, int d,
                              int i_begin, int i_end) {
  const bool use_avx512 = gram_avx512_available();
  (void)use_avx512;
  int k0 = 0;
  for (; k0 + kChunk <= d; k0 += kChunk) {
#if defined(__AVX512F__)
    if (use_avx512) {
      accumulate_pair_dots_chunk_avx512_f32(rows, pairdist, n, d, i_begin, i_end, k0);
      continue;
    }
#endif
    accumulate_pair_dots_chunk_f32(rows, pairdist, n, d, i_begin, i_end, k0);
  }
  if (k0 < d) accumulate_pair_dots_tail_f32(rows, pairdist, n, d, i_begin, i_end, k0, d);
}

/// Shared packed-row gather (diagonal 0, f32 values promoted on read).
template <typename T>
void gather_pair_row_from(const T* packed, int i, int n, double* dst) {
  // (j, i) entries for j < i: start at pair_index(0, i, n) == i - 1, and
  // consecutive source rows j are n - j - 2 apart at fixed column i.
  std::size_t idx = static_cast<std::size_t>(i) - 1;  // unused when i == 0
  for (int j = 0; j < i; ++j) {
    dst[j] = static_cast<double>(packed[idx]);
    idx += static_cast<std::size_t>(n - j - 2);
  }
  dst[i] = 0.0;
  // (i, j > i) is row i's contiguous packed run.
  if (i + 1 < n) {
    const T* run = packed + pair_row_start(i, n);
    for (int j = i + 1; j < n; ++j) dst[j] = static_cast<double>(run[j - i - 1]);
  }
}

}  // namespace

void GradientBatch::reshape(int n, int d) {
  ABFT_REQUIRE(n >= 0 && d >= 0, "batch shape must be non-negative");
  n_ = n;
  d_ = d;
  data_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
}

void GradientBatch::pack(std::span<const Vector> gradients) {
  ABFT_REQUIRE(!gradients.empty(), "cannot pack an empty gradient family");
  const int d = gradients.front().dim();
  reshape(static_cast<int>(gradients.size()), d);
  for (std::size_t i = 0; i < gradients.size(); ++i) {
    ABFT_REQUIRE(gradients[i].dim() == d, "all gradients must share a dimension");
    const auto src = gradients[i].coefficients();
    std::memcpy(data_.data() + i * static_cast<std::size_t>(d), src.data(),
                static_cast<std::size_t>(d) * sizeof(double));
  }
}

void GradientBatch::set_row(int i, const Vector& v) {
  ABFT_REQUIRE(0 <= i && i < n_, "batch row index out of range");
  ABFT_REQUIRE(v.dim() == d_, "row dimension mismatch");
  std::memcpy(data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(d_),
              v.coefficients().data(), static_cast<std::size_t>(d_) * sizeof(double));
}

void GradientBatch::set_row(int i, std::span<const double> values) {
  ABFT_REQUIRE(0 <= i && i < n_, "batch row index out of range");
  ABFT_REQUIRE(static_cast<int>(values.size()) == d_, "row dimension mismatch");
  std::memcpy(data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(d_),
              values.data(), static_cast<std::size_t>(d_) * sizeof(double));
}

void GradientBatch::truncate_rows(int n) {
  ABFT_REQUIRE(0 <= n && n <= n_, "cannot truncate to more rows than the batch holds");
  n_ = n;
}

Vector GradientBatch::unpack_row(int i) const {
  ABFT_REQUIRE(0 <= i && i < n_, "batch row index out of range");
  const auto r = row(i);
  return Vector(std::vector<double>(r.begin(), r.end()));
}

std::vector<Vector> GradientBatch::unpack() const {
  std::vector<Vector> out;
  out.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) out.push_back(unpack_row(i));
  return out;
}

void AggregatorWorkspace::fill_colmajor(const GradientBatch& batch) {
  const int n = batch.rows();
  const int d = batch.cols();
  colmajor.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  // Cache-blocked transpose: both the row-major source and the column-major
  // destination are touched in tiles that fit in L1.
  constexpr int kBlock = 64;
  run_parallel(0, d, [&](int k_begin, int k_end) {
    for (int k0 = k_begin; k0 < k_end; k0 += kBlock) {
      const int k1 = std::min(k0 + kBlock, k_end);
      for (int i0 = 0; i0 < n; i0 += kBlock) {
        const int i1 = std::min(i0 + kBlock, n);
        for (int i = i0; i < i1; ++i) {
          const double* src = batch.row(i).data();
          double* dst = colmajor.data() + i;
          for (int k = k0; k < k1; ++k) {
            dst[static_cast<std::size_t>(k) * static_cast<std::size_t>(n)] = src[k];
          }
        }
      }
    }
  });
}

void AggregatorWorkspace::fill_sqnorms(const GradientBatch& batch) {
  const int n = batch.rows();
  const int d = batch.cols();
  constexpr int kLanes = 8;
  sqnorms.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double* r = batch.row(i).data();
    double lanes[kLanes] = {0.0};
    int k = 0;
    for (; k + kLanes <= d; k += kLanes) {
      for (int b = 0; b < kLanes; ++b) lanes[b] += r[k + b] * r[k + b];
    }
    double sum = 0.0;
    for (; k < d; ++k) sum += r[k] * r[k];
    for (int b = 0; b < kLanes; ++b) sum += lanes[b];
    sqnorms[static_cast<std::size_t>(i)] = sum;
  }
}

void AggregatorWorkspace::fill_norms(const GradientBatch& batch) {
  fill_sqnorms(batch);
  norms.resize(sqnorms.size());
  for (std::size_t i = 0; i < sqnorms.size(); ++i) norms[i] = std::sqrt(sqnorms[i]);
}

void AggregatorWorkspace::fill_rows_f32(const GradientBatch& batch) {
  const int n = batch.rows();
  const int d = batch.cols();
  rows_f32.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  const double* src = batch.data();
  float* dst = rows_f32.data();
  // Element-wise demotion with one writer per element — bit-identical at
  // every thread count.
  run_parallel(0, n, [&](int i_begin, int i_end) {
    const std::size_t lo = static_cast<std::size_t>(i_begin) * static_cast<std::size_t>(d);
    const std::size_t hi = static_cast<std::size_t>(i_end) * static_cast<std::size_t>(d);
    for (std::size_t k = lo; k < hi; ++k) dst[k] = static_cast<float>(src[k]);
  });
}

void AggregatorWorkspace::fill_colmajor_f32(const GradientBatch& batch) {
  const int n = batch.rows();
  const int d = batch.cols();
  fill_rows_f32(batch);
  colmajor_f32.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  // Same cache-blocked transpose as fill_colmajor, over the demoted rows.
  constexpr int kBlock = 64;
  const float* rows = rows_f32.data();
  run_parallel(0, d, [&](int k_begin, int k_end) {
    for (int k0 = k_begin; k0 < k_end; k0 += kBlock) {
      const int k1 = std::min(k0 + kBlock, k_end);
      for (int i0 = 0; i0 < n; i0 += kBlock) {
        const int i1 = std::min(i0 + kBlock, n);
        for (int i = i0; i < i1; ++i) {
          const float* src = rows + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
          float* dst = colmajor_f32.data() + i;
          for (int k = k0; k < k1; ++k) {
            dst[static_cast<std::size_t>(k) * static_cast<std::size_t>(n)] = src[k];
          }
        }
      }
    }
  });
}

void AggregatorWorkspace::gather_pair_row(int i, int n, double* dst) const noexcept {
  if (f32_lane()) {
    gather_pair_row_from(pairdist_f32.data(), i, n, dst);
  } else {
    gather_pair_row_from(pairdist.data(), i, n, dst);
  }
}

void AggregatorWorkspace::fill_pairwise_sqdist(const GradientBatch& batch) {
  const int n = batch.rows();
  const int d = batch.cols();
  const std::size_t pairs = static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) - 1) / 2;
  // Dot products accumulate into the packed triangle in d-chunks sized so
  // the active rows stay cache-resident across the O(n^2) pair sweep — the
  // whole batch is read from memory once instead of once per pair.  The
  // packed layout stores each unordered pair once: half the matrix memory,
  // no n^2 zero-assign, no mirror pass.
  // Pair-level parallelism partitions the i range once per call (one thread
  // team, not one per chunk); every packed cell is written by exactly one
  // thread.  Each thread walks the d-chunks so its active row segments stay
  // cache-resident across its pair sweep.
  if (f32_lane()) {
    // Float32 lane: demote once, run the 16-wide f32 Gram kernels, convert
    // in double and store the packed triangle in f32.  The wider relative
    // guard reflects the f32 dot's larger accumulation error — clustered
    // batches simply take the direct-difference path, which is the most
    // accurate result f32 inputs admit.
    fill_rows_f32(batch);
    sqnorms_f32.resize(static_cast<std::size_t>(n));
    const float* rows = rows_f32.data();
    for (int i = 0; i < n; ++i) {
      constexpr int kLanes = 16;
      const float* r = rows + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
      float lanes[kLanes] = {0.0f};
      int k = 0;
      for (; k + kLanes <= d; k += kLanes) {
        for (int b = 0; b < kLanes; ++b) lanes[b] += r[k + b] * r[k + b];
      }
      float sum = 0.0f;
      for (; k < d; ++k) sum += r[k] * r[k];
      for (int b = 0; b < kLanes; ++b) sum += lanes[b];
      sqnorms_f32[static_cast<std::size_t>(i)] = sum;
    }
    pairdist_f32.assign(pairs, 0.0f);
    run_parallel(0, n, [&](int i_begin, int i_end) {
      accumulate_pair_dots_f32(rows, pairdist_f32.data(), n, d, i_begin, i_end);
    });
    constexpr double kCancellationGuardF32 = 1e-3;
    float* packed = pairdist_f32.data();
    for (int i = 0; i < n; ++i) {
      const double sqi = static_cast<double>(sqnorms_f32[static_cast<std::size_t>(i)]);
      float* prow = packed + pair_row_start(i, n);
      for (int j = i + 1; j < n; ++j) {
        const double scale =
            sqi + static_cast<double>(sqnorms_f32[static_cast<std::size_t>(j)]);
        double d2 =
            std::max(0.0, scale - 2.0 * static_cast<double>(prow[j - i - 1]));
        if (d2 < kCancellationGuardF32 * scale) {
          constexpr int kLanes = 16;
          const float* ri = rows + static_cast<std::size_t>(i) * static_cast<std::size_t>(d);
          const float* rj = rows + static_cast<std::size_t>(j) * static_cast<std::size_t>(d);
          float lanes[kLanes] = {0.0f};
          int k = 0;
          for (; k + kLanes <= d; k += kLanes) {
            for (int b = 0; b < kLanes; ++b) {
              const float diff = ri[k + b] - rj[k + b];
              lanes[b] += diff * diff;
            }
          }
          d2 = 0.0;
          for (; k < d; ++k) {
            const double diff = static_cast<double>(ri[k]) - static_cast<double>(rj[k]);
            d2 += diff * diff;
          }
          for (int b = 0; b < kLanes; ++b) d2 += static_cast<double>(lanes[b]);
        }
        prow[j - i - 1] = static_cast<float>(d2);
      }
    }
    return;
  }
  fill_sqnorms(batch);
  pairdist.assign(pairs, 0.0);
  run_parallel(0, n, [&](int i_begin, int i_end) {
    accumulate_pair_dots(batch, pairdist.data(), n, d, i_begin, i_end, mode);
  });
  // Convert the accumulated dots to squared distances in place.  The Gram
  // identity cancels catastrophically when gradients share a large common
  // component (||xi - xj||^2 << ||xi||^2 + ||xj||^2) — exactly the clustered
  // regime where Krum-family selection matters — so pairs whose result is
  // small relative to the cancellation scale are recomputed directly.  On
  // well-separated data no pair trips the guard and nothing is recomputed.
  constexpr double kCancellationGuard = 1e-6;
  for (int i = 0; i < n; ++i) {
    const double sqi = sqnorms[static_cast<std::size_t>(i)];
    double* prow = pairdist.data() + pair_row_start(i, n);
    for (int j = i + 1; j < n; ++j) {
      const double scale = sqi + sqnorms[static_cast<std::size_t>(j)];
      double d2 = std::max(0.0, scale - 2.0 * prow[j - i - 1]);
      if (d2 < kCancellationGuard * scale) {
        constexpr int kLanes = 8;
        const double* ri = batch.row(i).data();
        const double* rj = batch.row(j).data();
        double lanes[kLanes] = {0.0};
        int k = 0;
        for (; k + kLanes <= d; k += kLanes) {
          for (int b = 0; b < kLanes; ++b) {
            const double diff = ri[k + b] - rj[k + b];
            lanes[b] += diff * diff;
          }
        }
        d2 = 0.0;
        for (; k < d; ++k) {
          const double diff = ri[k] - rj[k];
          d2 += diff * diff;
        }
        for (int b = 0; b < kLanes; ++b) d2 += lanes[b];
      }
      prow[j - i - 1] = d2;
    }
  }
}

int validate_batch(const GradientBatch& batch, int f) {
  ABFT_REQUIRE(batch.rows() > 0, "aggregation needs at least one gradient");
  ABFT_REQUIRE(f >= 0, "fault bound f must be non-negative");
  ABFT_REQUIRE(f < batch.rows(), "fault bound f must be smaller than the number of gradients");
  ABFT_REQUIRE(batch.cols() > 0, "gradients must be non-empty vectors");
  return batch.cols();
}

void resize_output(Vector& out, int d) {
  if (out.dim() != d) out = Vector(d);
}

double median_inplace(double* first, double* last) {
  const std::size_t m = static_cast<std::size_t>(last - first);
  ABFT_REQUIRE(m > 0, "median of empty range");
  double* mid = first + m / 2;
  std::nth_element(first, mid, last);
  if (m % 2 == 1) return *mid;
  const double hi = *mid;
  const double lo = *std::max_element(first, mid);
  return 0.5 * (lo + hi);
}

}  // namespace abft::agg

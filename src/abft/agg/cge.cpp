#include "abft/agg/cge.hpp"

#include <algorithm>
#include <numeric>

namespace abft::agg {

std::vector<int> CgeAggregator::kept_indices(std::span<const Vector> gradients, int f) {
  const int n = static_cast<int>(gradients.size());
  std::vector<double> norms(gradients.size());
  for (std::size_t i = 0; i < gradients.size(); ++i) norms[i] = gradients[i].norm();
  std::vector<int> order(gradients.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&norms](int a, int b) {
    return norms[static_cast<std::size_t>(a)] < norms[static_cast<std::size_t>(b)];
  });
  order.resize(static_cast<std::size_t>(n - f));
  return order;
}

Vector CgeAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  Vector sum(dim);
  for (int idx : kept_indices(gradients, f)) sum += gradients[static_cast<std::size_t>(idx)];
  return sum;
}

void CgeAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                   AggregatorWorkspace& ws) const {
  const int d = validate_batch(batch, f);
  const int n = batch.rows();
  ws.fill_norms(batch);
  ws.order.resize(static_cast<std::size_t>(n));
  std::iota(ws.order.begin(), ws.order.end(), 0);
  std::stable_sort(ws.order.begin(), ws.order.end(), [&ws](int a, int b) {
    return ws.norms[static_cast<std::size_t>(a)] < ws.norms[static_cast<std::size_t>(b)];
  });
  resize_output(out, d);
  auto acc = out.coefficients();
  std::fill(acc.begin(), acc.end(), 0.0);
  // Sum in ascending-norm order, matching the span path's summation order.
  for (int s = 0; s < n - f; ++s) {
    const double* row = batch.row(ws.order[static_cast<std::size_t>(s)]).data();
    for (int k = 0; k < d; ++k) acc[static_cast<std::size_t>(k)] += row[k];
  }
}

}  // namespace abft::agg

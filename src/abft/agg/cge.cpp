#include "abft/agg/cge.hpp"

#include <algorithm>
#include <numeric>

namespace abft::agg {

std::vector<int> CgeAggregator::kept_indices(std::span<const Vector> gradients, int f) {
  const int n = static_cast<int>(gradients.size());
  std::vector<double> norms(gradients.size());
  for (std::size_t i = 0; i < gradients.size(); ++i) norms[i] = gradients[i].norm();
  std::vector<int> order(gradients.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&norms](int a, int b) {
    return norms[static_cast<std::size_t>(a)] < norms[static_cast<std::size_t>(b)];
  });
  order.resize(static_cast<std::size_t>(n - f));
  return order;
}

Vector CgeAggregator::aggregate(std::span<const Vector> gradients, int f) const {
  const int dim = validate_gradients(gradients, f);
  Vector sum(dim);
  for (int idx : kept_indices(gradients, f)) sum += gradients[static_cast<std::size_t>(idx)];
  return sum;
}

}  // namespace abft::agg

// Geometric median (Weiszfeld's algorithm) and geometric median-of-means
// (GMoM, Chen-Su-Xu 2017) — cited in the paper's Section 2.2 survey.
#pragma once

#include "abft/agg/aggregator.hpp"

namespace abft::agg {

/// Computes the geometric median of the given points to the given relative
/// tolerance via damped Weiszfeld iterations.  Deterministic.
Vector geometric_median(std::span<const Vector> points, double tolerance = 1e-10,
                        int max_iterations = 200);

/// Batched geometric median over the rows of `batch`, written into `out`.
/// Draws the Weiszfeld numerator from workspace.vecbuf — no allocation in
/// the iteration loop.  Same damping, tolerance and iteration schedule as
/// the span overload.
void geometric_median_into(Vector& out, const GradientBatch& batch,
                           AggregatorWorkspace& workspace, double tolerance = 1e-10,
                           int max_iterations = 200);

class GeometricMedianAggregator final : public GradientAggregator {
 public:
  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "geomed"; }
};

/// Partitions the n gradients into k buckets (k = 2f + 1 by default, capped
/// at n), averages each bucket, then takes the geometric median of the
/// bucket means.
class GmomAggregator final : public GradientAggregator {
 public:
  explicit GmomAggregator(int num_buckets = 0);

  [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override;
  void aggregate_into(Vector& out, const GradientBatch& batch, int f,
                      AggregatorWorkspace& workspace) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "gmom"; }

 private:
  int num_buckets_;
};

}  // namespace abft::agg

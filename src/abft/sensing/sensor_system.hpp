// Distributed state estimation under sensor attacks — the Section-2.4
// application.  The system state is x* in R^d; sensor i makes k_i linear
// observations y_i = H_i x* + noise.  A faulty sensor reports arbitrary
// measurements.  The classical result (Fawzi et al., Shoukry et al., Su &
// Shahrampour — the paper's refs [21, 34, 45, 46, 48]): the state is
// recoverable despite f faulty sensors iff the system is 2f-sparse
// observable, i.e. every subset of n - 2f sensors is jointly observable —
// which the paper identifies with 2f-redundancy of the quadratic costs
// Q_i(x) = ||y_i - H_i x||^2.
#pragma once

#include <vector>

#include "abft/core/subset_solver.hpp"
#include "abft/linalg/matrix.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/util/rng.hpp"

namespace abft::sensing {

using linalg::Matrix;
using linalg::Vector;

class SensorSystem {
 public:
  /// One observation matrix (k_i x d) and measurement vector (k_i) per
  /// sensor.  All matrices must share the column count d.
  SensorSystem(std::vector<Matrix> observation_matrices, std::vector<Vector> measurements);

  [[nodiscard]] int num_sensors() const noexcept {
    return static_cast<int>(observation_matrices_.size());
  }
  [[nodiscard]] int state_dim() const noexcept { return observation_matrices_.front().cols(); }

  [[nodiscard]] const Matrix& observation_matrix(int sensor) const;
  [[nodiscard]] const Vector& measurements(int sensor) const;

  /// Sensor i's cost Q_i(x) = ||y_i - H_i x||^2.
  [[nodiscard]] const opt::LeastSquaresCost& cost(int sensor) const;
  [[nodiscard]] std::vector<const opt::CostFunction*> costs(
      const std::vector<int>& sensors = {}) const;

  /// Joint observability of a sensor subset: the stacked observation matrix
  /// has full column rank d.
  [[nodiscard]] bool jointly_observable(const std::vector<int>& sensors) const;

  /// k-sparse observability: every subset of (num_sensors - k) sensors is
  /// jointly observable.  2f-sparse observability (k = 2f) is the exact
  /// recovery condition — equivalent to 2f-redundancy here.
  [[nodiscard]] bool sparse_observable(int k) const;

  /// Least-squares state estimate from a sensor subset (requires joint
  /// observability of the subset).
  [[nodiscard]] Vector subset_estimate(const std::vector<int>& sensors) const;

  /// Returns a copy with sensor `sensor`'s measurements replaced by
  /// arbitrary values — a compromised sensor.
  [[nodiscard]] SensorSystem with_corrupted_sensor(int sensor, const Vector& fake) const;

 private:
  std::vector<Matrix> observation_matrices_;
  std::vector<Vector> measurements_;
  std::vector<opt::LeastSquaresCost> costs_;
};

struct SensorGeneratorOptions {
  int num_sensors = 8;
  int state_dim = 3;
  /// Observations per sensor; each sensor alone is typically NOT observable
  /// when rows_per_sensor < state_dim (the interesting regime).
  int rows_per_sensor = 1;
  double noise_stddev = 0.01;
  /// Require k-sparse observability for this k (0 disables the check).
  int sparse_observability = 0;
  std::vector<double> true_state = {};  // defaults to all-ones
};

/// Draws random observation directions and measurements y = H x* + noise,
/// retrying (bounded) until the requested sparse-observability certificate
/// holds.  Also returns the ground-truth state used.
struct GeneratedSensorSystem {
  SensorSystem system;
  Vector true_state;
};
GeneratedSensorSystem random_sensor_system(const SensorGeneratorOptions& options,
                                           util::Rng& rng);

/// core::SubsetSolver adapter over subsets of sensors.
class SensorSubsetSolver final : public core::SubsetSolver {
 public:
  explicit SensorSubsetSolver(const SensorSystem& system) : system_(system) {}

  [[nodiscard]] int num_agents() const noexcept override { return system_.num_sensors(); }
  [[nodiscard]] int dim() const noexcept override { return system_.state_dim(); }
  [[nodiscard]] Vector solve(const std::vector<int>& sensors) const override {
    return system_.subset_estimate(sensors);
  }

 private:
  const SensorSystem& system_;
};

}  // namespace abft::sensing

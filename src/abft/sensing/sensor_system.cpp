#include "abft/sensing/sensor_system.hpp"

#include <numeric>

#include "abft/linalg/decompose.hpp"
#include "abft/util/check.hpp"
#include "abft/util/combinatorics.hpp"

namespace abft::sensing {

namespace {

/// Stacks the observation matrices and measurement vectors of a subset.
std::pair<Matrix, Vector> stack(const SensorSystem& system, const std::vector<int>& sensors) {
  int total_rows = 0;
  for (int s : sensors) total_rows += system.observation_matrix(s).rows();
  Matrix h(total_rows, system.state_dim());
  Vector y(total_rows);
  int row = 0;
  for (int s : sensors) {
    const Matrix& h_s = system.observation_matrix(s);
    const Vector& y_s = system.measurements(s);
    for (int r = 0; r < h_s.rows(); ++r, ++row) {
      for (int c = 0; c < h_s.cols(); ++c) h(row, c) = h_s(r, c);
      y[row] = y_s[r];
    }
  }
  return {std::move(h), std::move(y)};
}

}  // namespace

SensorSystem::SensorSystem(std::vector<Matrix> observation_matrices,
                           std::vector<Vector> measurements)
    : observation_matrices_(std::move(observation_matrices)),
      measurements_(std::move(measurements)) {
  ABFT_REQUIRE(!observation_matrices_.empty(), "system needs at least one sensor");
  ABFT_REQUIRE(observation_matrices_.size() == measurements_.size(),
               "one measurement vector per sensor");
  const int d = observation_matrices_.front().cols();
  ABFT_REQUIRE(d > 0, "state dimension must be positive");
  for (std::size_t i = 0; i < observation_matrices_.size(); ++i) {
    ABFT_REQUIRE(observation_matrices_[i].cols() == d, "sensors must observe the same state");
    ABFT_REQUIRE(observation_matrices_[i].rows() == measurements_[i].dim(),
                 "observation/measurement shape mismatch");
    costs_.emplace_back(observation_matrices_[i], measurements_[i]);
  }
}

const Matrix& SensorSystem::observation_matrix(int sensor) const {
  ABFT_REQUIRE(0 <= sensor && sensor < num_sensors(), "sensor index out of range");
  return observation_matrices_[static_cast<std::size_t>(sensor)];
}

const Vector& SensorSystem::measurements(int sensor) const {
  ABFT_REQUIRE(0 <= sensor && sensor < num_sensors(), "sensor index out of range");
  return measurements_[static_cast<std::size_t>(sensor)];
}

const opt::LeastSquaresCost& SensorSystem::cost(int sensor) const {
  ABFT_REQUIRE(0 <= sensor && sensor < num_sensors(), "sensor index out of range");
  return costs_[static_cast<std::size_t>(sensor)];
}

std::vector<const opt::CostFunction*> SensorSystem::costs(const std::vector<int>& sensors) const {
  std::vector<int> selected = sensors;
  if (selected.empty()) {
    selected.resize(static_cast<std::size_t>(num_sensors()));
    std::iota(selected.begin(), selected.end(), 0);
  }
  std::vector<const opt::CostFunction*> out;
  out.reserve(selected.size());
  for (int s : selected) {
    ABFT_REQUIRE(0 <= s && s < num_sensors(), "sensor index out of range");
    out.push_back(&costs_[static_cast<std::size_t>(s)]);
  }
  return out;
}

bool SensorSystem::jointly_observable(const std::vector<int>& sensors) const {
  ABFT_REQUIRE(!sensors.empty(), "observability of an empty subset is undefined");
  const auto [h, y] = stack(*this, sensors);
  (void)y;
  return linalg::column_rank(h) == state_dim();
}

bool SensorSystem::sparse_observable(int k) const {
  ABFT_REQUIRE(k >= 0, "sparsity level must be non-negative");
  const int keep = num_sensors() - k;
  if (keep < 1) return false;
  bool observable = true;
  util::for_each_combination(num_sensors(), keep, [&](const std::vector<int>& subset) {
    if (!jointly_observable(subset)) {
      observable = false;
      return false;
    }
    return true;
  });
  return observable;
}

Vector SensorSystem::subset_estimate(const std::vector<int>& sensors) const {
  ABFT_REQUIRE(!sensors.empty(), "estimate needs at least one sensor");
  const auto [h, y] = stack(*this, sensors);
  return linalg::least_squares(h, y);
}

SensorSystem SensorSystem::with_corrupted_sensor(int sensor, const Vector& fake) const {
  ABFT_REQUIRE(0 <= sensor && sensor < num_sensors(), "sensor index out of range");
  ABFT_REQUIRE(fake.dim() == measurements_[static_cast<std::size_t>(sensor)].dim(),
               "fake measurement dimension mismatch");
  std::vector<Vector> corrupted = measurements_;
  corrupted[static_cast<std::size_t>(sensor)] = fake;
  return SensorSystem(observation_matrices_, std::move(corrupted));
}

GeneratedSensorSystem random_sensor_system(const SensorGeneratorOptions& options,
                                           util::Rng& rng) {
  ABFT_REQUIRE(options.num_sensors > 0 && options.state_dim > 0 && options.rows_per_sensor > 0,
               "generator needs positive sizes");
  ABFT_REQUIRE(options.noise_stddev >= 0.0, "noise stddev must be non-negative");
  ABFT_REQUIRE(options.sparse_observability >= 0, "sparsity level must be non-negative");

  Vector x_star(options.state_dim);
  if (options.true_state.empty()) {
    for (int i = 0; i < options.state_dim; ++i) x_star[i] = 1.0;
  } else {
    ABFT_REQUIRE(static_cast<int>(options.true_state.size()) == options.state_dim,
                 "true state dimension mismatch");
    for (int i = 0; i < options.state_dim; ++i) {
      x_star[i] = options.true_state[static_cast<std::size_t>(i)];
    }
  }

  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<Matrix> h;
    std::vector<Vector> y;
    for (int s = 0; s < options.num_sensors; ++s) {
      Matrix h_s(options.rows_per_sensor, options.state_dim);
      Vector y_s(options.rows_per_sensor);
      for (int r = 0; r < options.rows_per_sensor; ++r) {
        Vector row(options.state_dim);
        double norm = 0.0;
        do {
          for (int c = 0; c < options.state_dim; ++c) row[c] = rng.normal();
          norm = row.norm();
        } while (norm < 1e-9);
        row /= norm;
        h_s.set_row(r, row);
        y_s[r] = linalg::dot(row, x_star) + rng.normal(0.0, options.noise_stddev);
      }
      h.push_back(std::move(h_s));
      y.push_back(std::move(y_s));
    }
    SensorSystem system(std::move(h), std::move(y));
    if (options.sparse_observability == 0 ||
        system.sparse_observable(options.sparse_observability)) {
      return GeneratedSensorSystem{std::move(system), x_star};
    }
  }
  ABFT_REQUIRE(false, "could not generate a sparse-observable system (raise sensors or rows)");
}

}  // namespace abft::sensing

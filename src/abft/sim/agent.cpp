#include "abft/sim/agent.hpp"

#include "abft/util/check.hpp"

namespace abft::sim {

std::vector<AgentSpec> honest_roster(std::span<const opt::CostFunction* const> costs) {
  ABFT_REQUIRE(!costs.empty(), "roster needs at least one agent");
  std::vector<AgentSpec> roster;
  roster.reserve(costs.size());
  for (const auto* cost : costs) {
    ABFT_REQUIRE(cost != nullptr, "honest agent needs a cost function");
    roster.push_back(AgentSpec{cost, nullptr});
  }
  return roster;
}

void assign_fault(std::vector<AgentSpec>& roster, int agent, const attack::FaultModel& fault) {
  ABFT_REQUIRE(0 <= agent && agent < static_cast<int>(roster.size()),
               "fault assignment index out of range");
  roster[static_cast<std::size_t>(agent)].fault = &fault;
}

std::vector<int> honest_indices(std::span<const AgentSpec> roster) {
  std::vector<int> out;
  for (std::size_t i = 0; i < roster.size(); ++i) {
    if (roster[i].is_honest()) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> byzantine_indices(std::span<const AgentSpec> roster) {
  std::vector<int> out;
  for (std::size_t i = 0; i < roster.size(); ++i) {
    if (!roster[i].is_honest()) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<unsigned char> faulty_mask(std::span<const AgentSpec> roster) {
  std::vector<unsigned char> mask(roster.size(), 0);
  for (std::size_t i = 0; i < roster.size(); ++i) mask[i] = roster[i].is_honest() ? 0 : 1;
  return mask;
}

}  // namespace abft::sim

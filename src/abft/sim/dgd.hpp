// The Distributed Gradient Descent method of Section 4.1, on the synchronous
// server-based architecture:
//
//   S1  server broadcasts x_t; agent i replies with g_i^t (honest: the true
//       gradient; Byzantine: anything).  A silent agent is eliminated and
//       n, f are updated.
//   S2  x_{t+1} = [ x_t - eta_t * GradFilter(g_1^t, ..., g_n^t) ]_W.
//
// Byzantine replies are generated *after* the honest replies of the round so
// that omniscient fault models can observe them (the strongest adversary the
// model admits).
//
// The round is fully batched and double-buffered: agents and fault injectors
// write their messages straight into rows of a persistent payload batch (one
// row per active agent; the honest rows double as the omniscient adversary's
// view), and the network writes each delivered message into the next row of
// a persistent ingest batch — silent and dropped messages are compacted away
// by construction, and no std::vector<Vector> staging exists anywhere in the
// loop.  With agg_threads > 1 a persistent thread pool parallelizes the
// honest-gradient and fault-emission phases over agents (each agent owns its
// row and its rng stream, so traces are bit-identical at every thread count)
// and the coordinate/pair loops inside the filter kernels.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "abft/agg/aggregator.hpp"
#include "abft/agg/threads.hpp"
#include "abft/opt/box.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/sim/agent.hpp"
#include "abft/sim/network.hpp"
#include "abft/sim/trace.hpp"

namespace abft::sim {

struct DgdConfig {
  Vector x0;
  opt::Box box;
  const opt::StepSchedule* schedule = nullptr;
  int iterations = 0;
  /// Declared fault bound f handed to the gradient filter.
  int f = 0;
  /// Seed for all randomness (fault behaviours, drop injection).
  std::uint64_t seed = 0;
  /// Probability that any agent->server message is lost (crash injection).
  double drop_probability = 0.0;
  bool record_transcript = false;
  /// Round-level parallelism: width of the persistent thread pool that
  /// parallelizes honest-gradient computation and fault emission over agents
  /// as well as the coordinate/pair loops inside the gradient filter.
  /// 1 = fully single-threaded.  Results are bit-identical for every value.
  int agg_threads = 1;
  /// Numerical mode of the gradient filter: AggMode::exact (default) keeps
  /// the kernels bit-compatible with the legacy span path; AggMode::fast
  /// enables the relaxed-parity vectorized kernels (tolerance-bounded, see
  /// agg/batch.hpp).
  agg::AggMode agg_mode = agg::AggMode::exact;
};

class DgdSimulation {
 public:
  /// Called once per iteration with (t, x_t, filtered gradient) before the
  /// update — lets tests check the phi_t condition of Theorem 3 directly.
  using Observer = std::function<void(int round, const Vector& estimate, const Vector& filtered)>;

  /// Computes an honest agent's reply; the default sends cost->gradient(x).
  /// The learning workload substitutes stochastic mini-batch gradients.
  /// Called concurrently (on distinct agents) when agg_threads > 1, so a
  /// custom fn must be thread-safe.
  using HonestGradientFn = std::function<Vector(int agent, const Vector& estimate, int round)>;

  /// Row-writer variant: computes the reply straight into a payload-batch
  /// row of dimension box.dim().  Same thread-safety contract.
  using HonestGradientWriter =
      std::function<void(int agent, const Vector& estimate, int round, std::span<double> out)>;

  DgdSimulation(std::vector<AgentSpec> roster, DgdConfig config);

  /// Adapter for the legacy allocating fn (copies the returned Vector into
  /// the batch row); prefer set_honest_gradient_writer on hot paths.
  void set_honest_gradient_fn(HonestGradientFn fn);
  void set_honest_gradient_writer(HonestGradientWriter writer);
  void set_observer(Observer observer);

  /// Runs the full DGD loop and returns the estimate trace.
  Trace run(const agg::GradientAggregator& aggregator);

  [[nodiscard]] const SyncNetwork& network() const noexcept { return network_; }

 private:
  std::vector<AgentSpec> roster_;
  DgdConfig config_;
  SyncNetwork network_;
  HonestGradientWriter honest_writer_;
  Observer observer_;

  // Persistent double-buffered round state: payload_batch_ is written by the
  // agents and fault injectors, ingest_batch_ by the network; both reshape
  // (never reallocate after the first round) as agents are eliminated.
  std::unique_ptr<agg::ThreadPool> pool_;
  agg::AggregatorWorkspace workspace_;
  agg::GradientBatch payload_batch_;
  agg::GradientBatch ingest_batch_;
  Vector filtered_;
  std::vector<int> honest_rows_;
  std::vector<int> faulty_rows_;
  std::vector<unsigned char> silent_;
};

}  // namespace abft::sim

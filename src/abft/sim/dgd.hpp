// The Distributed Gradient Descent method of Section 4.1, on the synchronous
// server-based architecture:
//
//   S1  server broadcasts x_t; agent i replies with g_i^t (honest: the true
//       gradient; Byzantine: anything).  A silent agent is eliminated and
//       n, f are updated.
//   S2  x_{t+1} = [ x_t - eta_t * GradFilter(g_1^t, ..., g_n^t) ]_W.
//
// Byzantine replies are generated *after* the honest replies of the round so
// that omniscient fault models can observe them (the strongest adversary the
// model admits).
//
// The round loop itself — double-buffered payload/ingest batches, thread-pool
// dispatch, honest/faulty row partition, elimination and f bookkeeping, the
// scenario axes (partial participation, stragglers, churn) — lives in the
// shared engine::RoundEngine; this driver supplies only its policies: the
// honest gradient producer, the FaultModel emission, the SyncNetwork
// transport, and the projected-descent update rule.  With the axes at their
// defaults the traces are bit-identical to the pre-engine driver at every
// thread count.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "abft/agg/aggregator.hpp"
#include "abft/engine/async_engine.hpp"
#include "abft/engine/round_engine.hpp"
#include "abft/opt/box.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/sim/agent.hpp"
#include "abft/sim/network.hpp"
#include "abft/sim/trace.hpp"

namespace abft::sim {

struct DgdConfig {
  Vector x0;
  opt::Box box;
  const opt::StepSchedule* schedule = nullptr;
  int iterations = 0;
  /// Declared fault bound f handed to the gradient filter.
  int f = 0;
  /// Seed for all randomness (fault behaviours, drop injection).
  std::uint64_t seed = 0;
  /// Probability that any agent->server message is lost (crash injection).
  double drop_probability = 0.0;
  bool record_transcript = false;
  /// Round-level parallelism: width of the persistent thread pool that
  /// parallelizes honest-gradient computation and fault emission over agents
  /// as well as the coordinate/pair loops inside the gradient filter.
  /// 1 = fully single-threaded.  Results are bit-identical for every value.
  int agg_threads = 1;
  /// Numerical mode of the gradient filter: AggMode::exact (default) keeps
  /// the kernels bit-compatible with the legacy span path; AggMode::fast
  /// enables the relaxed-parity vectorized kernels (tolerance-bounded, see
  /// agg/batch.hpp).
  agg::AggMode agg_mode = agg::AggMode::exact;
  /// Compute precision of the filter's fast lane (agg/batch.hpp): f32
  /// demotes the bandwidth-bound kernel inputs.  Only meaningful with
  /// agg_mode == fast; a no-op under exact.
  agg::Precision agg_precision = agg::Precision::f64;
  /// Round-perturbation axes (engine/axes.hpp): partial participation,
  /// straggler schedules, churn.  Defaults are a no-op (bit-identical run).
  engine::ScenarioAxes axes;
  /// Event-driven mode (engine/async_engine.hpp): quorum-or-deadline rounds
  /// over a virtual clock instead of the synchronous close.  Mutually
  /// exclusive with the axes and with drop injection — lateness and loss are
  /// realized through arrival times there.  Empty = synchronous engine.
  std::optional<engine::AsyncConfig> async;
};

class DgdSimulation {
 public:
  /// Called once per iteration with (t, x_t, filtered gradient) before the
  /// update — lets tests check the phi_t condition of Theorem 3 directly.
  using Observer = engine::RoundObserver;

  /// Computes an honest agent's reply; the default sends cost->gradient(x).
  /// The learning workload substitutes stochastic mini-batch gradients.
  /// Called concurrently (on distinct agents) when agg_threads > 1, so a
  /// custom fn must be thread-safe.
  using HonestGradientFn = std::function<Vector(int agent, const Vector& estimate, int round)>;

  /// Row-writer variant: computes the reply straight into a payload-batch
  /// row of dimension box.dim().  Same thread-safety contract.
  using HonestGradientWriter =
      std::function<void(int agent, const Vector& estimate, int round, std::span<double> out)>;

  DgdSimulation(std::vector<AgentSpec> roster, DgdConfig config);

  /// Adapter for the legacy allocating fn (copies the returned Vector into
  /// the batch row); prefer set_honest_gradient_writer on hot paths.
  void set_honest_gradient_fn(HonestGradientFn fn);
  void set_honest_gradient_writer(HonestGradientWriter writer);
  void set_observer(Observer observer);

  /// Runs the full DGD loop and returns the estimate trace.
  Trace run(const agg::GradientAggregator& aggregator);

  [[nodiscard]] const SyncNetwork& network() const noexcept { return network_; }

  /// Trigger/staleness counters of the last async run; nullptr in sync mode.
  [[nodiscard]] const engine::AsyncStats* async_stats() const noexcept {
    return async_ ? &async_->stats() : nullptr;
  }

 private:
  Trace run_async(const agg::GradientAggregator& aggregator);

  std::vector<AgentSpec> roster_;
  DgdConfig config_;
  SyncNetwork network_;
  HonestGradientWriter honest_writer_;

  /// Owns the round state: batches, pool, workspace, rng streams,
  /// membership/elimination bookkeeping and the scenario plan.  Exactly one
  /// of engine_/async_ is constructed, keyed off config_.async.
  std::unique_ptr<engine::RoundEngine> engine_;
  std::unique_ptr<engine::AsyncRoundEngine> async_;
  Vector filtered_;
};

}  // namespace abft::sim

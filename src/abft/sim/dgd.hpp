// The Distributed Gradient Descent method of Section 4.1, on the synchronous
// server-based architecture:
//
//   S1  server broadcasts x_t; agent i replies with g_i^t (honest: the true
//       gradient; Byzantine: anything).  A silent agent is eliminated and
//       n, f are updated.
//   S2  x_{t+1} = [ x_t - eta_t * GradFilter(g_1^t, ..., g_n^t) ]_W.
//
// Byzantine replies are generated *after* the honest replies of the round so
// that omniscient fault models can observe them (the strongest adversary the
// model admits).
#pragma once

#include <functional>

#include "abft/agg/aggregator.hpp"
#include "abft/opt/box.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/sim/agent.hpp"
#include "abft/sim/network.hpp"
#include "abft/sim/trace.hpp"

namespace abft::sim {

struct DgdConfig {
  Vector x0;
  opt::Box box;
  const opt::StepSchedule* schedule = nullptr;
  int iterations = 0;
  /// Declared fault bound f handed to the gradient filter.
  int f = 0;
  /// Seed for all randomness (fault behaviours, drop injection).
  std::uint64_t seed = 0;
  /// Probability that any agent->server message is lost (crash injection).
  double drop_probability = 0.0;
  bool record_transcript = false;
  /// Coordinate/pair-level parallelism inside the gradient filter (threaded
  /// into AggregatorWorkspace::parallel_threads).  1 = single-threaded.
  int agg_threads = 1;
};

class DgdSimulation {
 public:
  /// Called once per iteration with (t, x_t, filtered gradient) before the
  /// update — lets tests check the phi_t condition of Theorem 3 directly.
  using Observer = std::function<void(int round, const Vector& estimate, const Vector& filtered)>;

  /// Computes an honest agent's reply; the default sends cost->gradient(x).
  /// The learning workload substitutes stochastic mini-batch gradients.
  using HonestGradientFn = std::function<Vector(int agent, const Vector& estimate, int round)>;

  DgdSimulation(std::vector<AgentSpec> roster, DgdConfig config);

  void set_honest_gradient_fn(HonestGradientFn fn);
  void set_observer(Observer observer);

  /// Runs the full DGD loop and returns the estimate trace.
  Trace run(const agg::GradientAggregator& aggregator);

  [[nodiscard]] const SyncNetwork& network() const noexcept { return network_; }

 private:
  std::vector<AgentSpec> roster_;
  DgdConfig config_;
  SyncNetwork network_;
  HonestGradientFn honest_gradient_;
  Observer observer_;
};

}  // namespace abft::sim

#include "abft/sim/trace.hpp"

#include <string>

#include "abft/util/check.hpp"
#include "abft/util/csv.hpp"

namespace abft::sim {

const Vector& Trace::final_estimate() const {
  ABFT_REQUIRE(!estimates.empty(), "trace has no estimates");
  return estimates.back();
}

std::vector<double> Trace::loss_series(const opt::CostFunction& honest_aggregate) const {
  std::vector<double> out;
  out.reserve(estimates.size());
  for (const auto& x : estimates) out.push_back(honest_aggregate.value(x));
  return out;
}

std::vector<double> Trace::distance_series(const Vector& reference) const {
  std::vector<double> out;
  out.reserve(estimates.size());
  for (const auto& x : estimates) out.push_back(linalg::distance(x, reference));
  return out;
}

void Trace::write_csv(std::ostream& os) const {
  ABFT_REQUIRE(!estimates.empty(), "cannot export an empty trace");
  const int dim = estimates.front().dim();
  std::vector<std::string> header{"t"};
  for (int k = 0; k < dim; ++k) header.push_back("x" + std::to_string(k));
  util::CsvWriter csv(os, std::move(header));
  for (std::size_t t = 0; t < estimates.size(); ++t) {
    std::vector<double> row{static_cast<double>(t)};
    for (int k = 0; k < dim; ++k) row.push_back(estimates[t][k]);
    csv.add_numeric_row(row);
  }
}

}  // namespace abft::sim

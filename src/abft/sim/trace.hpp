// Execution traces: the estimate sequence x_0, ..., x_T plus derived series
// (aggregate honest loss and distance to x_H) — exactly the quantities the
// paper plots in Figures 2-3.
#pragma once

#include <iosfwd>
#include <vector>

#include "abft/opt/cost.hpp"

namespace abft::sim {

using linalg::Vector;

struct Trace {
  /// Estimates x_0, ..., x_T (length iterations + 1).
  std::vector<Vector> estimates;
  /// Number of agents eliminated for staying silent (step S1).
  int eliminated_agents = 0;
  /// Number of agents that left mid-run via the churn axis (not eliminated:
  /// departures are scenario events, not S1 detections).
  int departed_agents = 0;

  [[nodiscard]] const Vector& final_estimate() const;

  /// sum_{i in H} Q_i(x_t) for every recorded estimate ("loss" in Fig. 2).
  [[nodiscard]] std::vector<double> loss_series(const opt::CostFunction& honest_aggregate) const;

  /// ||x_t - reference|| for every recorded estimate ("distance" in Fig. 2).
  [[nodiscard]] std::vector<double> distance_series(const Vector& reference) const;

  /// CSV export (columns: t, x[0..d-1]) for external plotting.
  void write_csv(std::ostream& os) const;
};

}  // namespace abft::sim

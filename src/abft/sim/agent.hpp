// Agent roster for the synchronous server-based system of Figure 1: each
// agent is either honest (sends the true gradient of its local cost) or
// Byzantine (its message comes from a FaultModel, possibly after observing
// every honest gradient of the round).
#pragma once

#include <vector>

#include "abft/attack/fault.hpp"
#include "abft/opt/cost.hpp"

namespace abft::sim {

struct AgentSpec {
  /// The agent's local cost Q_i.  Honest agents require it; Byzantine agents
  /// may carry one (gradient-reverse needs the true gradient) or not.
  const opt::CostFunction* cost = nullptr;
  /// Non-null marks the agent Byzantine.
  const attack::FaultModel* fault = nullptr;

  [[nodiscard]] bool is_honest() const noexcept { return fault == nullptr; }
};

/// Builds a roster of n honest agents over the given costs.
std::vector<AgentSpec> honest_roster(std::span<const opt::CostFunction* const> costs);

/// Marks `agent` in the roster as Byzantine with the given behaviour.
void assign_fault(std::vector<AgentSpec>& roster, int agent, const attack::FaultModel& fault);

/// Indices of honest agents in the roster.
std::vector<int> honest_indices(std::span<const AgentSpec> roster);

/// Indices of Byzantine agents in the roster.
std::vector<int> byzantine_indices(std::span<const AgentSpec> roster);

/// Per-slot Byzantine mask in the form engine::RoundEngine consumes.
std::vector<unsigned char> faulty_mask(std::span<const AgentSpec> roster);

}  // namespace abft::sim

// Synchronous round-based message layer between the agents and the server.
// The system model (Section 1.4) is synchronous, so a round is: server
// broadcasts x_t, every agent's reply is delivered before the round closes,
// and a missing reply is *detectable* (step S1 eliminates the sender).  The
// network supports per-message drop injection so elimination is exercised
// under crash-style faults too, and can record a transcript for inspection.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "abft/linalg/vector.hpp"
#include "abft/util/rng.hpp"

namespace abft::sim {

using linalg::Vector;

struct GradientMessage {
  int agent = 0;
  int round = 0;
  /// Empty when the agent stayed silent or the message was dropped.
  std::optional<Vector> payload;
};

class SyncNetwork {
 public:
  /// drop_probability applies independently to every agent->server message.
  explicit SyncNetwork(double drop_probability = 0.0, std::uint64_t seed = 0);

  /// Applies drop injection; returns what the server receives.
  std::optional<Vector> transmit(int agent, int round, std::optional<Vector> payload);

  /// Row-writer ingest for the batched round loop: one agent->server message
  /// per call, in agent order.  An empty `payload` means the agent stayed
  /// silent (no drop draw — identical rng consumption to transmit with an
  /// empty optional).  Otherwise the drop coin is tossed and, when the
  /// message survives, the payload is copied into `dst` — the network writes
  /// the gradient straight into the server's ingest-batch row.  Returns true
  /// iff the server received the message.  Bit-compatible with transmit().
  bool transmit_row(int agent, int round, std::span<const double> payload,
                    std::span<double> dst);

  /// Enables transcript recording (off by default: long learning runs would
  /// otherwise retain every gradient).
  void record_transcript(bool enabled) noexcept { recording_ = enabled; }

  [[nodiscard]] const std::vector<GradientMessage>& transcript() const noexcept {
    return transcript_;
  }

  [[nodiscard]] long messages_sent() const noexcept { return messages_sent_; }
  [[nodiscard]] long messages_dropped() const noexcept { return messages_dropped_; }

 private:
  double drop_probability_;
  util::Rng rng_;
  bool recording_ = false;
  std::vector<GradientMessage> transcript_;
  long messages_sent_ = 0;
  long messages_dropped_ = 0;
};

}  // namespace abft::sim

#include "abft/sim/network.hpp"

#include <cstring>

#include "abft/util/check.hpp"

namespace abft::sim {

SyncNetwork::SyncNetwork(double drop_probability, std::uint64_t seed)
    : drop_probability_(drop_probability), rng_(seed) {
  ABFT_REQUIRE(0.0 <= drop_probability && drop_probability <= 1.0,
               "drop probability must be in [0, 1]");
}

std::optional<Vector> SyncNetwork::transmit(int agent, int round,
                                            std::optional<Vector> payload) {
  ++messages_sent_;
  if (payload.has_value() && drop_probability_ > 0.0 && rng_.uniform() < drop_probability_) {
    payload.reset();
    ++messages_dropped_;
  }
  if (recording_) transcript_.push_back(GradientMessage{agent, round, payload});
  return payload;
}

bool SyncNetwork::transmit_row(int agent, int round, std::span<const double> payload,
                               std::span<double> dst) {
  ++messages_sent_;
  bool delivered = !payload.empty();
  if (delivered && drop_probability_ > 0.0 && rng_.uniform() < drop_probability_) {
    delivered = false;
    ++messages_dropped_;
  }
  if (delivered) {
    ABFT_REQUIRE(payload.size() == dst.size(), "ingest row size mismatch");
    std::memcpy(dst.data(), payload.data(), payload.size() * sizeof(double));
  }
  if (recording_) {
    std::optional<Vector> copy;
    if (delivered) copy = Vector(std::vector<double>(payload.begin(), payload.end()));
    transcript_.push_back(GradientMessage{agent, round, std::move(copy)});
  }
  return delivered;
}

}  // namespace abft::sim

#include "abft/sim/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "abft/util/check.hpp"

namespace abft::sim {

int settling_index(std::span<const double> series, double band) {
  ABFT_REQUIRE(!series.empty(), "settling index of empty series");
  ABFT_REQUIRE(band >= 0.0, "band must be non-negative");
  const double final_value = series.back();
  int settle = static_cast<int>(series.size()) - 1;
  for (int t = static_cast<int>(series.size()) - 1; t >= 0; --t) {
    if (std::abs(series[static_cast<std::size_t>(t)] - final_value) > band) break;
    settle = t;
  }
  return settle;
}

double tail_mean(std::span<const double> series, int window) {
  ABFT_REQUIRE(!series.empty(), "tail mean of empty series");
  ABFT_REQUIRE(window > 0, "window must be positive");
  const auto count = std::min<std::size_t>(static_cast<std::size_t>(window), series.size());
  double sum = 0.0;
  for (std::size_t i = series.size() - count; i < series.size(); ++i) sum += series[i];
  return sum / static_cast<double>(count);
}

bool is_decreasing_trend(std::span<const double> series, int window) {
  ABFT_REQUIRE(window > 0, "window must be positive");
  if (series.size() < 2 * static_cast<std::size_t>(window)) {
    return series.back() <= series.front();
  }
  std::vector<double> smoothed;
  smoothed.reserve(series.size());
  double running = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    running += series[i];
    if (i >= static_cast<std::size_t>(window)) running -= series[i - static_cast<std::size_t>(window)];
    const auto denom = std::min<std::size_t>(i + 1, static_cast<std::size_t>(window));
    smoothed.push_back(running / static_cast<double>(denom));
  }
  // Compare the smoothed head and tail.
  const double head = smoothed[static_cast<std::size_t>(window)];
  const double tail = smoothed.back();
  return tail <= head + 1e-12;
}

}  // namespace abft::sim

#include "abft/sim/dgd.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::sim {

DgdSimulation::DgdSimulation(std::vector<AgentSpec> roster, DgdConfig config)
    : roster_(std::move(roster)),
      config_(std::move(config)),
      network_(config_.drop_probability, config_.seed ^ 0x5eedf00dULL) {
  ABFT_REQUIRE(!roster_.empty(), "simulation needs at least one agent");
  ABFT_REQUIRE(config_.schedule != nullptr, "simulation needs a step schedule");
  ABFT_REQUIRE(config_.iterations >= 0, "iterations must be non-negative");
  ABFT_REQUIRE(config_.f >= 0, "declared fault bound must be non-negative");
  ABFT_REQUIRE(config_.x0.dim() == config_.box.dim(), "x0/box dimension mismatch");
  for (const auto& spec : roster_) {
    if (spec.is_honest()) {
      ABFT_REQUIRE(spec.cost != nullptr, "honest agent needs a cost function");
    }
    if (spec.cost != nullptr) {
      ABFT_REQUIRE(spec.cost->dim() == config_.box.dim(), "agent cost dimension mismatch");
    }
  }
  network_.record_transcript(config_.record_transcript);
  honest_writer_ = [this](int agent, const Vector& estimate, int /*round*/,
                          std::span<double> out) {
    roster_[static_cast<std::size_t>(agent)].cost->gradient_into(estimate, out);
  };
  if (config_.async) {
    // The async mode realizes lateness/loss through the virtual clock; the
    // synchronous perturbation axes and drop injection do not compose with
    // it, so reject the combination instead of silently ignoring either.
    ABFT_REQUIRE(!config_.axes.enabled(),
                 "async mode does not compose with the participation/straggler/churn axes");
    ABFT_REQUIRE(config_.drop_probability == 0.0,
                 "async mode does not compose with drop injection");
    async_ = std::make_unique<engine::AsyncRoundEngine>(
        faulty_mask(roster_), config_.box.dim(),
        engine::AsyncEngineConfig{config_.seed, config_.agg_threads, config_.agg_mode,
                                  config_.agg_precision, *config_.async});
  } else {
    engine_ = std::make_unique<engine::RoundEngine>(
        faulty_mask(roster_), config_.box.dim(),
        engine::RoundEngineConfig{config_.seed, config_.agg_threads, config_.agg_mode,
                                  config_.agg_precision, config_.axes});
  }
}

void DgdSimulation::set_honest_gradient_fn(HonestGradientFn fn) {
  ABFT_REQUIRE(static_cast<bool>(fn), "honest gradient function must be callable");
  honest_writer_ = [fn = std::move(fn)](int agent, const Vector& estimate, int round,
                                        std::span<double> out) {
    const Vector grad = fn(agent, estimate, round);
    ABFT_REQUIRE(grad.dim() == static_cast<int>(out.size()),
                 "honest gradient has the wrong dimension");
    const auto src = grad.coefficients();
    std::copy(src.begin(), src.end(), out.begin());
  };
}

void DgdSimulation::set_honest_gradient_writer(HonestGradientWriter writer) {
  ABFT_REQUIRE(static_cast<bool>(writer), "honest gradient writer must be callable");
  honest_writer_ = std::move(writer);
}

void DgdSimulation::set_observer(Observer observer) {
  if (async_) {
    async_->set_observer(std::move(observer));
  } else {
    engine_->set_observer(std::move(observer));
  }
}

Trace DgdSimulation::run(const agg::GradientAggregator& aggregator) {
  if (async_) return run_async(aggregator);
  engine_->reset(config_.f);

  Trace trace;
  trace.estimates.reserve(static_cast<std::size_t>(config_.iterations) + 1);
  Vector x = config_.box.project(config_.x0);
  trace.estimates.push_back(x);

  for (int t = 0; t < config_.iterations; ++t) {
    engine_->begin_round(t);

    // Produce: honest replies straight into their payload rows, then the
    // Byzantine replies mutated in place (the true gradient is materialized
    // into the fault's own row first, so emit_into sees it without scratch —
    // the row may alias the output, part of the emit_into contract).
    engine_->emit_honest([&](int agent, std::span<double> out) {
      honest_writer_(agent, x, t, out);
    });
    engine_->emit_faulty([&](int agent, std::span<double> row,
                             const attack::HonestRowsView& view) {
      const auto& spec = roster_[static_cast<std::size_t>(agent)];
      if (spec.cost != nullptr) {
        spec.cost->gradient_into(x, row);
      } else {
        std::fill(row.begin(), row.end(), 0.0);
      }
      const attack::RowAttackContext context{x, row, view, t};
      return spec.fault->emit_into(row, context, engine_->agent_rng(agent));
    });

    // Deliver: the network writes each surviving message into the next
    // ingest row; undelivered messages eliminate the sender (step S1).
    engine_->deliver([&](int agent, std::span<const double> payload, std::span<double> dst) {
      return network_.transmit_row(agent, t, payload, dst);
    });
    trace.eliminated_agents = engine_->eliminated_count();
    trace.departed_agents = engine_->departed_count();

    // Filter + update; a round in which nothing was delivered (only possible
    // under the straggler/participation axes) holds position.
    if (engine_->aggregate(aggregator, filtered_)) {
      engine_->notify(t, x, filtered_);
      x = config_.box.project(x - config_.schedule->step(t) * filtered_);
    }
    trace.estimates.push_back(x);
  }
  return trace;
}

Trace DgdSimulation::run_async(const agg::GradientAggregator& aggregator) {
  async_->reset(config_.f);

  Trace trace;
  trace.estimates.reserve(static_cast<std::size_t>(config_.iterations) + 1);
  Vector x = config_.box.project(config_.x0);
  trace.estimates.push_back(x);

  for (int t = 0; t < config_.iterations; ++t) {
    async_->begin_round(t);

    // Produce: only the agents whose previous row has been consumed (or
    // dropped stale) start a new gradient, against the CURRENT estimate —
    // a row consumed k rounds later is a stale gradient by construction.
    async_->emit_honest([&](int agent, std::span<double> out) {
      honest_writer_(agent, x, t, out);
    });
    async_->emit_faulty([&](int agent, std::span<double> row,
                            const attack::HonestRowsView& view) {
      const auto& spec = roster_[static_cast<std::size_t>(agent)];
      if (spec.cost != nullptr) {
        spec.cost->gradient_into(x, row);
      } else {
        std::fill(row.begin(), row.end(), 0.0);
      }
      const attack::RowAttackContext context{x, row, view, t};
      return spec.fault->emit_into(row, context, async_->agent_rng(agent));
    });

    // Trigger + filter + update: fire on quorum-or-deadline, aggregate the
    // staleness-weighted batch, hold position when nothing (usable) arrived.
    // No elimination bookkeeping: silence is indistinguishable from slowness
    // without a synchronous close, so the membership never shrinks.
    async_->collect(t);
    if (async_->aggregate(aggregator, filtered_)) {
      async_->notify(t, x, filtered_);
      x = config_.box.project(x - config_.schedule->step(t) * filtered_);
    }
    trace.estimates.push_back(x);
  }
  return trace;
}

}  // namespace abft::sim

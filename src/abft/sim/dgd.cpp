#include "abft/sim/dgd.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::sim {

DgdSimulation::DgdSimulation(std::vector<AgentSpec> roster, DgdConfig config)
    : roster_(std::move(roster)),
      config_(std::move(config)),
      network_(config_.drop_probability, config_.seed ^ 0x5eedf00dULL) {
  ABFT_REQUIRE(!roster_.empty(), "simulation needs at least one agent");
  ABFT_REQUIRE(config_.schedule != nullptr, "simulation needs a step schedule");
  ABFT_REQUIRE(config_.iterations >= 0, "iterations must be non-negative");
  ABFT_REQUIRE(config_.f >= 0, "declared fault bound must be non-negative");
  ABFT_REQUIRE(config_.x0.dim() == config_.box.dim(), "x0/box dimension mismatch");
  for (const auto& spec : roster_) {
    if (spec.is_honest()) {
      ABFT_REQUIRE(spec.cost != nullptr, "honest agent needs a cost function");
    }
    if (spec.cost != nullptr) {
      ABFT_REQUIRE(spec.cost->dim() == config_.box.dim(), "agent cost dimension mismatch");
    }
  }
  network_.record_transcript(config_.record_transcript);
  honest_writer_ = [this](int agent, const Vector& estimate, int /*round*/,
                          std::span<double> out) {
    roster_[static_cast<std::size_t>(agent)].cost->gradient_into(estimate, out);
  };
  // ThreadPool(1) spawns no workers and parallel_for degenerates to a
  // direct call, so the pool is constructed unconditionally and every phase
  // dispatches through it without a serial/parallel branch.
  const int threads = std::max(1, config_.agg_threads);
  pool_ = std::make_unique<agg::ThreadPool>(threads);
  workspace_.parallel_threads = threads;
  workspace_.pool = pool_.get();
  workspace_.mode = config_.agg_mode;
}

void DgdSimulation::set_honest_gradient_fn(HonestGradientFn fn) {
  ABFT_REQUIRE(static_cast<bool>(fn), "honest gradient function must be callable");
  honest_writer_ = [fn = std::move(fn)](int agent, const Vector& estimate, int round,
                                        std::span<double> out) {
    const Vector grad = fn(agent, estimate, round);
    ABFT_REQUIRE(grad.dim() == static_cast<int>(out.size()),
                 "honest gradient has the wrong dimension");
    const auto src = grad.coefficients();
    std::copy(src.begin(), src.end(), out.begin());
  };
}

void DgdSimulation::set_honest_gradient_writer(HonestGradientWriter writer) {
  ABFT_REQUIRE(static_cast<bool>(writer), "honest gradient writer must be callable");
  honest_writer_ = std::move(writer);
}

void DgdSimulation::set_observer(Observer observer) { observer_ = std::move(observer); }

Trace DgdSimulation::run(const agg::GradientAggregator& aggregator) {
  const int dim = config_.box.dim();
  util::Rng master(config_.seed);
  // Independent stream per agent so behaviour is invariant to roster order
  // (and to the thread count: each agent owns its stream outright).
  std::vector<util::Rng> agent_rng;
  agent_rng.reserve(roster_.size());
  for (std::size_t i = 0; i < roster_.size(); ++i) agent_rng.push_back(master.split());

  std::vector<int> active(roster_.size());
  for (std::size_t i = 0; i < roster_.size(); ++i) active[i] = static_cast<int>(i);
  std::vector<int> still_active;
  still_active.reserve(roster_.size());
  int current_f = config_.f;

  Trace trace;
  trace.estimates.reserve(static_cast<std::size_t>(config_.iterations) + 1);
  Vector x = config_.box.project(config_.x0);
  trace.estimates.push_back(x);

  const int threads = std::max(1, config_.agg_threads);
  for (int t = 0; t < config_.iterations; ++t) {
    const int n_active = static_cast<int>(active.size());
    payload_batch_.reshape(n_active, dim);
    honest_rows_.clear();
    faulty_rows_.clear();
    for (int a = 0; a < n_active; ++a) {
      const auto& spec = roster_[static_cast<std::size_t>(active[static_cast<std::size_t>(a)])];
      (spec.is_honest() ? honest_rows_ : faulty_rows_).push_back(a);
    }
    silent_.assign(static_cast<std::size_t>(n_active), 0);

    // Phase 1: honest replies, written straight into their payload rows
    // (parallel over agents; omniscient faults read these rows in phase 2).
    pool_->parallel_for(0, static_cast<int>(honest_rows_.size()), threads,
                        [&](int begin, int end) {
                          for (int h = begin; h < end; ++h) {
                            const int a = honest_rows_[static_cast<std::size_t>(h)];
                            honest_writer_(active[static_cast<std::size_t>(a)], x, t,
                                           payload_batch_.row(a));
                          }
                        });

    // Phase 2: Byzantine replies, mutated in place on their own rows.  The
    // true gradient is materialized into the fault's row first, so emit_into
    // sees it without any scratch allocation (the row may alias the output —
    // part of the emit_into contract).
    const attack::HonestRowsView honest_view(payload_batch_.data(), dim, honest_rows_);
    pool_->parallel_for(
        0, static_cast<int>(faulty_rows_.size()), threads, [&](int begin, int end) {
          for (int b = begin; b < end; ++b) {
            const int a = faulty_rows_[static_cast<std::size_t>(b)];
            const int agent = active[static_cast<std::size_t>(a)];
            const auto& spec = roster_[static_cast<std::size_t>(agent)];
            auto row = payload_batch_.row(a);
            if (spec.cost != nullptr) {
              spec.cost->gradient_into(x, row);
            } else {
              std::fill(row.begin(), row.end(), 0.0);
            }
            const attack::RowAttackContext context{x, row, honest_view, t};
            const bool sent =
                spec.fault->emit_into(row, context, agent_rng[static_cast<std::size_t>(agent)]);
            silent_[static_cast<std::size_t>(a)] = sent ? 0 : 1;
          }
        });

    // Phase 3 (serial: the drop stream is ordered by agent): the network
    // writes each delivered message into the next ingest row, compacting
    // silent and dropped agents away by construction.
    ingest_batch_.reshape(n_active, dim);
    still_active.clear();
    int kept = 0;
    for (int a = 0; a < n_active; ++a) {
      const int agent = active[static_cast<std::size_t>(a)];
      std::span<const double> payload;
      if (silent_[static_cast<std::size_t>(a)] == 0) payload = payload_batch_.row(a);
      if (network_.transmit_row(agent, t, payload, ingest_batch_.row(kept))) {
        ++kept;
        still_active.push_back(agent);
      } else {
        // Step S1: a silent agent is necessarily faulty in a synchronous
        // system — eliminate it and shrink both n and f.
        ++trace.eliminated_agents;
        current_f = std::max(0, current_f - 1);
      }
    }
    ingest_batch_.truncate_rows(kept);
    std::swap(active, still_active);
    ABFT_REQUIRE(!active.empty(), "every agent was eliminated");

    const int usable_f = std::min(current_f, kept - 1);
    aggregator.aggregate_into(filtered_, ingest_batch_, std::max(0, usable_f), workspace_);
    if (observer_) observer_(t, x, filtered_);

    x = config_.box.project(x - config_.schedule->step(t) * filtered_);
    trace.estimates.push_back(x);
  }
  return trace;
}

}  // namespace abft::sim

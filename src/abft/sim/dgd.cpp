#include "abft/sim/dgd.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::sim {

DgdSimulation::DgdSimulation(std::vector<AgentSpec> roster, DgdConfig config)
    : roster_(std::move(roster)),
      config_(std::move(config)),
      network_(config_.drop_probability, config_.seed ^ 0x5eedf00dULL) {
  ABFT_REQUIRE(!roster_.empty(), "simulation needs at least one agent");
  ABFT_REQUIRE(config_.schedule != nullptr, "simulation needs a step schedule");
  ABFT_REQUIRE(config_.iterations >= 0, "iterations must be non-negative");
  ABFT_REQUIRE(config_.f >= 0, "declared fault bound must be non-negative");
  ABFT_REQUIRE(config_.x0.dim() == config_.box.dim(), "x0/box dimension mismatch");
  for (const auto& spec : roster_) {
    if (spec.is_honest()) {
      ABFT_REQUIRE(spec.cost != nullptr, "honest agent needs a cost function");
    }
    if (spec.cost != nullptr) {
      ABFT_REQUIRE(spec.cost->dim() == config_.box.dim(), "agent cost dimension mismatch");
    }
  }
  network_.record_transcript(config_.record_transcript);
  honest_gradient_ = [this](int agent, const Vector& estimate, int /*round*/) {
    return roster_[static_cast<std::size_t>(agent)].cost->gradient(estimate);
  };
}

void DgdSimulation::set_honest_gradient_fn(HonestGradientFn fn) {
  ABFT_REQUIRE(static_cast<bool>(fn), "honest gradient function must be callable");
  honest_gradient_ = std::move(fn);
}

void DgdSimulation::set_observer(Observer observer) { observer_ = std::move(observer); }

Trace DgdSimulation::run(const agg::GradientAggregator& aggregator) {
  const int dim = config_.box.dim();
  util::Rng master(config_.seed);
  // Independent stream per agent so behaviour is invariant to roster order.
  std::vector<util::Rng> agent_rng;
  agent_rng.reserve(roster_.size());
  for (std::size_t i = 0; i < roster_.size(); ++i) agent_rng.push_back(master.split());

  std::vector<int> active(roster_.size());
  for (std::size_t i = 0; i < roster_.size(); ++i) active[i] = static_cast<int>(i);
  int current_f = config_.f;

  Trace trace;
  trace.estimates.reserve(static_cast<std::size_t>(config_.iterations) + 1);
  Vector x = config_.box.project(config_.x0);
  trace.estimates.push_back(x);

  // Hot-path state reused across rounds: the received gradients are packed
  // into one contiguous batch per round, and the aggregator draws all its
  // scratch from a workspace that stops allocating after the first round.
  agg::GradientBatch batch;
  agg::AggregatorWorkspace workspace;
  workspace.parallel_threads = std::max(1, config_.agg_threads);
  Vector filtered;

  for (int t = 0; t < config_.iterations; ++t) {
    // Honest replies first (omniscient faults may read them).
    std::vector<Vector> honest_grads;
    honest_grads.reserve(active.size());
    for (int agent : active) {
      if (roster_[static_cast<std::size_t>(agent)].is_honest()) {
        honest_grads.push_back(honest_gradient_(agent, x, t));
      }
    }

    // Collect what the server receives, in agent order.
    std::vector<Vector> received;
    received.reserve(active.size());
    std::vector<int> still_active;
    still_active.reserve(active.size());
    std::size_t honest_cursor = 0;
    for (int agent : active) {
      const auto& spec = roster_[static_cast<std::size_t>(agent)];
      std::optional<Vector> payload;
      if (spec.is_honest()) {
        payload = honest_grads[honest_cursor++];
      } else {
        const Vector true_grad =
            spec.cost != nullptr ? spec.cost->gradient(x) : Vector(dim);
        const attack::AttackContext context{x, true_grad, honest_grads, t};
        payload = spec.fault->emit(context, agent_rng[static_cast<std::size_t>(agent)]);
      }
      payload = network_.transmit(agent, t, std::move(payload));
      if (payload.has_value()) {
        ABFT_REQUIRE(payload->dim() == dim, "agent sent a gradient of wrong dimension");
        received.push_back(std::move(*payload));
        still_active.push_back(agent);
      } else {
        // Step S1: a silent agent is necessarily faulty in a synchronous
        // system — eliminate it and shrink both n and f.
        ++trace.eliminated_agents;
        current_f = std::max(0, current_f - 1);
      }
    }
    active = std::move(still_active);
    ABFT_REQUIRE(!active.empty(), "every agent was eliminated");

    const int usable_f = std::min(current_f, static_cast<int>(received.size()) - 1);
    batch.pack(received);
    aggregator.aggregate_into(filtered, batch, std::max(0, usable_f), workspace);
    if (observer_) observer_(t, x, filtered);

    x = config_.box.project(x - config_.schedule->step(t) * filtered);
    trace.estimates.push_back(x);
  }
  return trace;
}

}  // namespace abft::sim

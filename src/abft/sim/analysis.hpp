// Convergence analysis over recorded series (loss or distance): when did a
// run settle, and at what level?  Used by benches to report "converged after
// ~400 iterations" the way Section 5 does.
#pragma once

#include <span>

#include "abft/sim/trace.hpp"

namespace abft::sim {

/// First index t such that every later value stays within `band` of the
/// series' final value.  Returns the series length if it never settles
/// (i.e. only the last point qualifies trivially, length - 1).
int settling_index(std::span<const double> series, double band);

/// Mean of the last `window` values (window clamped to the series length).
double tail_mean(std::span<const double> series, int window);

/// True if the series is (weakly) decreasing after smoothing with a moving
/// average of the given window — a loose "is this run converging" check.
bool is_decreasing_trend(std::span<const double> series, int window);

}  // namespace abft::sim

// Quickstart: the smallest end-to-end use of the library.
//
//   1. Give each agent a local cost Q_i (here: scalar regression residuals).
//   2. Mark one agent Byzantine with a fault behaviour.
//   3. Run distributed gradient descent with a robust gradient filter.
//   4. Compare the result against the honest agents' true minimizer.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <iostream>

#include "abft/agg/registry.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"

int main() {
  using namespace abft;

  // The paper's own 6-agent linear-regression instance (Appendix J).
  const auto problem = regress::RegressionProblem::paper_instance();

  // Agent 0 is Byzantine: it reverses its gradient every round.
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);

  // DGD with diminishing steps eta_t = 1.5 / (t + 1), constrained to
  // W = [-1000, 1000]^2, tolerating f = 1 fault.
  const opt::HarmonicSchedule schedule(1.5);
  sim::DgdConfig config{linalg::Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule,
                        500, /*f=*/1, /*seed=*/1};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));

  // Robust aggregation: comparative gradient elimination (CGE).
  const auto cge = agg::make_aggregator("cge");
  const auto trace = simulation.run(*cge);

  // What should we have found?  The minimizer of the five honest costs.
  const auto x_h = problem.subset_minimizer({1, 2, 3, 4, 5});
  const double error = linalg::distance(trace.final_estimate(), x_h);

  // How approximate may the answer be?  The instance's (2f, eps)-redundancy.
  const regress::RegressionSubsetSolver solver(problem);
  const double eps = core::measure_redundancy(solver, 1).epsilon;

  std::cout << "honest minimizer x_H   = " << x_h << '\n'
            << "DGD + CGE output       = " << trace.final_estimate() << '\n'
            << "approximation error    = " << error << '\n'
            << "redundancy epsilon     = " << eps << '\n'
            << (error < eps ? "PASS: output within epsilon of x_H despite the Byzantine agent\n"
                            : "FAIL: error exceeded epsilon\n");
  return error < eps ? 0 : 1;
}

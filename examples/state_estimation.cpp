// Secure state estimation under sensor attacks (the paper's Section-2.4
// application).  Ten sensors each observe ONE linear projection of a
// 3-dimensional state — so no sensor alone can reconstruct it, and the
// system relies on combining sensors.  Two sensors are compromised and
// report fabricated measurements.  Because the system is 2f-sparse
// observable (equivalently: its quadratic costs are 2f-redundant), the
// robust estimators recover the state; stacked least squares does not.
#include <iostream>
#include <sstream>

#include "abft/agg/registry.hpp"
#include "abft/core/exhaustive.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/sensing/sensor_system.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

int main() {
  util::Rng rng(2024);
  sensing::SensorGeneratorOptions options;
  options.num_sensors = 10;
  options.state_dim = 3;
  options.rows_per_sensor = 1;
  options.noise_stddev = 0.005;
  options.sparse_observability = 4;  // 2f with f = 2
  options.true_state = {3.0, -1.5, 0.5};
  const auto generated = sensing::random_sensor_system(options, rng);

  // Sensors 0 and 1 are compromised: they report large fabricated values.
  auto corrupted = generated.system.with_corrupted_sensor(0, Vector{40.0});
  corrupted = corrupted.with_corrupted_sensor(1, Vector{-60.0});

  std::cout << "secure state estimation: 10 single-projection sensors, d = 3, 2 compromised\n"
            << "2f-sparse observable: " << (corrupted.sparse_observable(4) ? "yes" : "no")
            << ", single sensor observable: "
            << (corrupted.jointly_observable({0}) ? "yes" : "no") << "\n\n";

  std::vector<int> everyone;
  for (int s = 0; s < 10; ++s) everyone.push_back(s);

  const sensing::SensorSubsetSolver solver(corrupted);
  const auto exhaustive = core::exhaustive_resilient_solve(solver, 2);

  const opt::HarmonicSchedule schedule(0.4);
  auto dgd_estimate = [&](const char* filter) {
    sim::DgdConfig config{Vector(3), opt::Box::centered_cube(3, 100.0), &schedule, 1500, 2, 5};
    sim::DgdSimulation simulation(sim::honest_roster(corrupted.costs()), std::move(config));
    const auto aggregator = agg::make_aggregator(filter);
    return simulation.run(*aggregator).final_estimate();
  };

  util::Table table({"estimator", "estimate", "error"});
  auto add = [&](const std::string& label, const Vector& estimate) {
    std::ostringstream cell;
    cell << estimate;
    table.add_row({label, cell.str(),
                   util::format_scientific(linalg::distance(estimate, generated.true_state), 2)});
  };
  add("stacked least squares", corrupted.subset_estimate(everyone));
  add("theorem-2 exhaustive", exhaustive.output);
  add("dgd + cge", dgd_estimate("cge"));
  add("dgd + cwtm", dgd_estimate("cwtm"));
  table.print(std::cout);
  std::cout << "\ntrue state: " << generated.true_state << '\n';
  return 0;
}

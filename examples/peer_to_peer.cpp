// Peer-to-peer fault-tolerant optimization (Figure 1, right): no trusted
// server.  Gradients are exchanged through Byzantine broadcast (recursive
// Oral Messages, f < n/3), every honest agent filters and updates locally,
// and — the point of the exercise — all honest estimates stay in lockstep
// even while the Byzantine agent equivocates inside the protocol.
#include <iostream>
#include <sstream>

#include "abft/agg/registry.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/p2p/p2p_dgd.hpp"
#include "abft/regress/problem.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

int main() {
  const auto problem = regress::RegressionProblem::paper_instance();
  const Vector x_h = problem.subset_minimizer({1, 2, 3, 4, 5});

  // Agent 0 is Byzantine twice over: it reverses its gradient AND lies
  // inconsistently to different peers while relaying broadcast messages.
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  const p2p::EquivocateStrategy equivocate(25.0);

  const opt::HarmonicSchedule schedule(1.5);
  const p2p::P2pDgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule,
                                 300, /*f=*/1, /*seed=*/9};
  const auto cge = agg::make_aggregator("cge");
  const auto result = p2p::run_p2p_dgd(roster, config, *cge, &equivocate);

  std::cout << "peer-to-peer DGD, n = 6, f = 1, " << result.broadcast_messages
            << " broadcast messages over 300 rounds\n\n";

  util::Table table({"honest agent", "final estimate", "||x - x_H||"});
  for (std::size_t k = 0; k < result.traces.size(); ++k) {
    std::ostringstream cell;
    cell << result.traces[k].final_estimate();
    table.add_row({std::to_string(result.honest_nodes[k]), cell.str(),
                   util::format_scientific(
                       linalg::distance(result.traces[k].final_estimate(), x_h), 3)});
  }
  table.print(std::cout);

  // Agreement check: every honest agent holds bit-identical estimates.
  bool lockstep = true;
  for (std::size_t k = 1; k < result.traces.size(); ++k) {
    for (std::size_t t = 0; t < result.traces[0].estimates.size(); ++t) {
      if (!(result.traces[k].estimates[t] == result.traces[0].estimates[t])) lockstep = false;
    }
  }
  std::cout << '\n'
            << (lockstep ? "agreement: all honest estimates identical at every round\n"
                         : "AGREEMENT VIOLATION\n");
  return lockstep ? 0 : 1;
}

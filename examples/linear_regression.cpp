// Distributed linear regression under Byzantine faults — the paper's
// Section-5 scenario with a configurable filter and fault behaviour.
//
// Usage: linear_regression [filter] [fault] [iterations]
//   filter:  average | cge | cwtm | cwmed | krum | multikrum | geomed |
//            gmom | normclip               (default: cge)
//   fault:   reverse | random | zero | lie | silent   (default: reverse)
//   iterations: positive integer           (default: 500)
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "abft/agg/registry.hpp"
#include "abft/attack/adaptive_faults.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/core/bounds.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

namespace {

std::unique_ptr<attack::FaultModel> make_fault(const std::string& name) {
  if (name == "reverse") return std::make_unique<attack::GradientReverseFault>();
  if (name == "random") return std::make_unique<attack::RandomGaussianFault>(200.0);
  if (name == "zero") return std::make_unique<attack::ZeroFault>();
  if (name == "lie") return std::make_unique<attack::LittleIsEnoughFault>(1.5);
  if (name == "silent") return std::make_unique<attack::SilentFault>();
  std::cerr << "unknown fault '" << name << "'\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string filter = argc > 1 ? argv[1] : "cge";
  const std::string fault_name = argc > 2 ? argv[2] : "reverse";
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 500;
  if (iterations <= 0) {
    std::cerr << "iterations must be positive\n";
    return 2;
  }

  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<int> honest{1, 2, 3, 4, 5};
  const Vector x_h = problem.subset_minimizer(honest);
  const auto fault = make_fault(fault_name);
  const auto aggregator = agg::make_aggregator(filter);

  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, *fault);
  const opt::HarmonicSchedule schedule(1.5);
  sim::DgdConfig config{Vector{-0.0085, -0.5643}, opt::Box::centered_cube(2, 1000.0), &schedule,
                        iterations, 1, 7};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto trace = simulation.run(*aggregator);

  const regress::RegressionSubsetSolver solver(problem);
  const double eps = core::measure_redundancy(solver, 1).epsilon;
  const opt::AggregateCost honest_loss(problem.costs(honest));

  std::cout << "distributed linear regression (paper instance), filter = " << filter
            << ", fault = " << fault_name << ", iterations = " << iterations << "\n\n";
  util::Table table({"t", "loss", "||x_t - x_H||"});
  const auto losses = trace.loss_series(honest_loss);
  const auto distances = trace.distance_series(x_h);
  for (std::size_t t = 0; t < losses.size();
       t += std::max<std::size_t>(1, losses.size() / 12)) {
    table.add_row({std::to_string(t), util::format_scientific(losses[t], 3),
                   util::format_scientific(distances[t], 3)});
  }
  table.print(std::cout);
  std::cout << "\nfinal estimate " << trace.final_estimate() << ", error "
            << util::format_scientific(distances.back(), 3) << " (epsilon = "
            << util::format_double(eps, 4) << ")"
            << (trace.eliminated_agents > 0
                    ? ", eliminated " + std::to_string(trace.eliminated_agents) + " agent(s)"
                    : "")
            << '\n';
  return 0;
}

// Byzantine-robust distributed learning (Appendix K scenario, scaled for a
// demo): 10 agents train a shared softmax classifier with D-SGD on sharded
// synthetic data; 3 agents flip their labels.  Robust aggregation keeps the
// model close to the fault-free one; plain averaging does not.
//
// Usage: learning_demo [iterations]   (default 400)
#include <cstdlib>
#include <iostream>

#include "abft/agg/registry.hpp"
#include "abft/learn/dataset.hpp"
#include "abft/learn/dsgd.hpp"
#include "abft/learn/softmax.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 400;
  if (iterations <= 0) {
    std::cerr << "iterations must be positive\n";
    return 2;
  }

  // SynthDigits-style data: 10 classes in R^64, shared train/test geometry.
  auto options = learn::synth_digits_options();
  options.examples_per_class = 120;
  util::Rng data_rng(1);
  const auto full = learn::make_synthetic(options, data_rng);
  util::Rng split_rng(2);
  const auto split = learn::split_train_test(full, 0.2, split_rng);
  util::Rng shard_rng(3);
  const auto shards = learn::shard(split.train, 10, shard_rng);

  const learn::SoftmaxRegression model(split.train.feature_dim(), split.train.num_classes);
  learn::DsgdConfig config;
  config.iterations = iterations;
  config.batch_size = 128;
  config.step_size = 0.01;
  config.f = 3;
  config.eval_interval = std::max(1, iterations / 10);
  config.seed = 4;

  std::vector<learn::AgentFault> faults(10, learn::AgentFault::kHonest);
  for (int i = 0; i < 3; ++i) faults[static_cast<std::size_t>(i)] = learn::AgentFault::kLabelFlip;

  std::cout << "distributed learning demo: n = 10, f = 3 label-flipping agents, "
            << iterations << " iterations\n\n";
  util::Table table({"aggregation", "final train loss", "final test accuracy"});
  for (const char* name : {"average", "cwtm", "cge", "geomed"}) {
    const auto aggregator = agg::make_aggregator(name);
    const auto series = learn::run_dsgd(model, Vector(model.param_dim()), shards, faults,
                                        split.test, *aggregator, config);
    table.add_row({name, util::format_double(series.train_loss.back(), 4),
                   util::format_double(series.test_accuracy.back() * 100.0, 4) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nLabel flipping biases the plain average toward the flipped labels; the\n"
               "robust rules discard or damp the poisoned gradients.\n";
  return 0;
}

// Robust mean estimation as fault-tolerant distributed optimization — the
// Section-2.3 mapping.  Each agent i holds a data point c_i and the cost
// Q_i(x) = ||x - c_i||^2, so the honest aggregate minimizes at the honest
// mean.  f agents are outliers ("Byzantine data").  The example contrasts:
//
//   * the naive mean (corrupted by the outliers),
//   * the Theorem-2 exhaustive algorithm (guaranteed (f, 2eps)-resilient),
//   * DGD with the CGE and CWTM filters (the paper's practical route).
#include <iostream>
#include <sstream>

#include "abft/agg/registry.hpp"
#include "abft/core/exhaustive.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/rng.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

int main() {
  constexpr int kHonest = 8;
  constexpr int kOutliers = 2;  // f = 2
  constexpr int kDim = 3;
  util::Rng rng(11);

  // Honest points cluster around (1, -2, 0.5); outliers sit far away.
  std::vector<Vector> points;
  Vector honest_mean(kDim);
  for (int i = 0; i < kHonest; ++i) {
    Vector p{1.0 + 0.2 * rng.normal(), -2.0 + 0.2 * rng.normal(), 0.5 + 0.2 * rng.normal()};
    honest_mean += p;
    points.push_back(std::move(p));
  }
  honest_mean /= static_cast<double>(kHonest);
  points.push_back(Vector{40.0, 40.0, -40.0});
  points.push_back(Vector{-35.0, 50.0, 10.0});

  const int n = kHonest + kOutliers;
  const core::MeanSubsetSolver solver(points);

  // Naive mean of everything (what a non-robust system computes).
  std::vector<int> everyone;
  for (int i = 0; i < n; ++i) everyone.push_back(i);
  const Vector naive = solver.solve(everyone);

  // Theorem-2 exhaustive algorithm over the received points.
  const double eps = core::measure_redundancy(solver, kOutliers).epsilon;
  const auto exhaustive = core::exhaustive_resilient_solve(solver, kOutliers);

  // DGD with gradient filters over the same costs.
  std::vector<opt::SquaredDistanceCost> costs;
  costs.reserve(points.size());
  for (const auto& p : points) costs.emplace_back(p);
  std::vector<const opt::CostFunction*> cost_ptrs;
  for (const auto& c : costs) cost_ptrs.push_back(&c);
  const opt::HarmonicSchedule schedule(0.5);
  auto run_filter = [&](const char* name) {
    sim::DgdConfig config{Vector(kDim), opt::Box::centered_cube(kDim, 100.0), &schedule, 600,
                          kOutliers, 3};
    // The outlier agents are "honest" about their (bad) data: the corruption
    // lives in the data, as in robust statistics.
    sim::DgdSimulation simulation(sim::honest_roster(cost_ptrs), std::move(config));
    const auto aggregator = agg::make_aggregator(name);
    return simulation.run(*aggregator).final_estimate();
  };

  util::Table table({"estimator", "estimate", "error vs honest mean"});
  auto add = [&](const std::string& label, const Vector& estimate) {
    std::ostringstream cell;
    cell << estimate;
    table.add_row({label, cell.str(),
                   util::format_scientific(linalg::distance(estimate, honest_mean), 2)});
  };
  add("naive mean", naive);
  add("theorem-2 exhaustive", exhaustive.output);
  add("dgd + cge", run_filter("cge"));
  add("dgd + cwtm", run_filter("cwtm"));
  add("dgd + geomed", run_filter("geomed"));

  std::cout << "robust mean estimation, n = " << n << ", f = " << kOutliers
            << " outliers, (2f, eps)-redundancy eps = " << util::format_double(eps, 3) << "\n\n";
  table.print(std::cout);
  std::cout << "\nThe naive mean is dragged by the outliers; the exhaustive algorithm is\n"
               "guaranteed within 2*eps of every honest-subset mean; the filters get the\n"
               "same effect at a fraction of the cost.\n";
  return 0;
}
